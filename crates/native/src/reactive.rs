//! The reactive lock on host atomics (§3.3.1 / §3.7.3).
//!
//! Selects between [`TtsLock`] (cheap when uncontended) and
//! [`McsLock`] (scalable, fair) at run time. The consensus discipline
//! is the paper's: **the two sub-locks are never free at the same
//! time** — in queue mode the TTS flag is pinned busy, and in TTS mode
//! the queue is marked invalid with a sentinel tail so enqueuers bounce.
//! The mode word is only a dispatch hint.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use crate::mcs::{McsLock, McsNode};
use crate::tts::TtsLock;

const MODE_TTS: u8 = 0;
const MODE_QUEUE: u8 = 1;

/// Failed test&set attempts in one acquisition that signal high
/// contention.
const TTS_RETRY_LIMIT: u64 = 8;
/// Consecutive empty-queue acquisitions that signal low contention.
const EMPTY_QUEUE_LIMIT: u64 = 16;

/// What `release` must do (the paper's release-mode token).
#[derive(Debug)]
pub struct Held {
    kind: HeldKind,
}

#[derive(Debug)]
enum HeldKind {
    Tts { switch: bool },
    Queue { node: Box<McsNode>, switch: bool },
}

/// The reactive lock. Usable directly (acquire/release) or through
/// [`ReactiveMutex`] for RAII data protection.
#[derive(Debug)]
pub struct ReactiveLock {
    mode: AtomicU8,
    tts: TtsLock,
    queue: McsLock,
    /// Queue validity: enqueuers check it after enqueueing; the protocol
    /// changer flips it while holding the lock, so a stale enqueuer
    /// receives an eventual grant or observes invalidity and retries.
    queue_valid: AtomicU8,
    empty_streak: AtomicU64,
    switches: AtomicU64,
}

impl Default for ReactiveLock {
    fn default() -> Self {
        Self::new()
    }
}

impl ReactiveLock {
    /// Create in TTS mode (unlocked).
    pub fn new() -> ReactiveLock {
        ReactiveLock {
            mode: AtomicU8::new(MODE_TTS),
            tts: TtsLock::new(),
            queue: McsLock::new(),
            queue_valid: AtomicU8::new(0),
            empty_streak: AtomicU64::new(0),
            switches: AtomicU64::new(0),
        }
    }

    /// Number of protocol changes performed.
    pub fn switches(&self) -> u64 {
        self.switches.load(Ordering::Relaxed)
    }

    /// Current protocol (0 = TTS, 1 = queue); diagnostics only.
    pub fn mode(&self) -> u8 {
        self.mode.load(Ordering::Relaxed)
    }

    /// Acquire; keep the returned [`Held`] and pass it to
    /// [`ReactiveLock::release`].
    pub fn acquire(&self) -> Held {
        loop {
            // Optimistic fast path: in queue mode the TTS flag is pinned
            // busy, so success implies the TTS protocol is current.
            if self.tts.try_lock() {
                self.empty_streak.store(0, Ordering::Relaxed);
                return Held {
                    kind: HeldKind::Tts { switch: false },
                };
            }
            if self.mode.load(Ordering::Acquire) == MODE_TTS {
                // TTS acquisition that re-checks the mode hint while
                // waiting: after a TTS -> queue change the flag is
                // pinned busy *forever*, so a plain spin would livelock.
                if let Some(failures) = self.acquire_tts_watching_mode() {
                    let switch = failures > TTS_RETRY_LIMIT;
                    self.empty_streak.store(0, Ordering::Relaxed);
                    return Held {
                        kind: HeldKind::Tts { switch },
                    };
                }
                continue; // mode changed under us: re-dispatch
            }
            // Queue mode.
            let node = Box::new(McsNode::new());
            let empty = self.queue.lock(&node);
            if self.queue_valid.load(Ordering::Acquire) == 0 {
                // We won an *invalid* queue (raced a change back to TTS
                // mode). Release it and retry via dispatch.
                self.queue.unlock(&node);
                continue;
            }
            let switch = if empty {
                let s = self.empty_streak.fetch_add(1, Ordering::Relaxed) + 1;
                s > EMPTY_QUEUE_LIMIT
            } else {
                self.empty_streak.store(0, Ordering::Relaxed);
                false
            };
            return Held {
                kind: HeldKind::Queue { node, switch },
            };
        }
    }

    /// Acquire the TTS sub-lock with exponential backoff, bailing out
    /// with `None` as soon as the mode hint leaves TTS (the flag may
    /// then be pinned busy forever). Returns the failed-attempt count.
    fn acquire_tts_watching_mode(&self) -> Option<u64> {
        let mut failures = 0u64;
        let mut delay = 8u32;
        loop {
            if self.tts.try_lock() {
                return Some(failures);
            }
            failures += 1;
            for _ in 0..delay {
                std::hint::spin_loop();
            }
            delay = (delay * 2).min(4_096);
            let mut polls = 0u32;
            while self.tts.is_locked() {
                std::hint::spin_loop();
                polls += 1;
                if polls % 64 == 0 {
                    if self.mode.load(Ordering::Acquire) != MODE_TTS {
                        return None;
                    }
                    std::thread::yield_now();
                }
            }
            if self.mode.load(Ordering::Acquire) != MODE_TTS {
                return None;
            }
        }
    }

    /// Release, performing any protocol change the acquisition decided.
    pub fn release(&self, held: Held) {
        match held.kind {
            HeldKind::Tts { switch: false } => self.tts.unlock(),
            HeldKind::Tts { switch: true } => {
                // TTS -> queue: validate the queue, leave TTS pinned
                // busy, then release through the queue. Our own critical
                // section is already over, so a racer that dispatches on
                // the new mode and wins the queue first is harmless: our
                // node just queues behind it and we pass the grant on.
                self.queue_valid.store(1, Ordering::Release);
                self.mode.store(MODE_QUEUE, Ordering::Release);
                self.switches.fetch_add(1, Ordering::Relaxed);
                self.empty_streak.store(0, Ordering::Relaxed);
                let node = Box::new(McsNode::new());
                let _empty = self.queue.lock(&node);
                self.queue.unlock(&node);
            }
            HeldKind::Queue {
                node,
                switch: false,
            } => self.queue.unlock(&node),
            HeldKind::Queue { node, switch: true } => {
                // Queue -> TTS: flip the hint, invalidate the queue,
                // free the TTS flag. Waiters already queued still get
                // FIFO grants; new arrivals bounce on `queue_valid`.
                self.mode.store(MODE_TTS, Ordering::Release);
                self.queue_valid.store(0, Ordering::Release);
                self.switches.fetch_add(1, Ordering::Relaxed);
                self.queue.unlock(&node);
                self.tts.unlock();
            }
        }
    }
}

// Safety argument for the queue -> TTS change: entering the critical
// section requires either winning the TTS flag or (queue grant AND
// queue_valid == 1). The changer stores queue_valid = 0 *before* its
// queue unlock and frees the TTS flag after, so any waiter granted the
// (now invalid) queue observes queue_valid == 0 via the grant's
// release/acquire edge, forwards the grant down the chain, and retries
// through dispatch — no invalid grant ever enters the critical section,
// exactly the paper's "invalid protocol executions return retry"
// discipline (§3.2.5).

/// RAII mutex over a [`ReactiveLock`].
///
/// ```
/// use reactive_native::ReactiveMutex;
/// let m = ReactiveMutex::new(0u64);
/// *m.lock() += 1;
/// assert_eq!(*m.lock(), 1);
/// ```
#[derive(Debug, Default)]
pub struct ReactiveMutex<T> {
    lock: ReactiveLock,
    data: std::cell::UnsafeCell<T>,
}

// SAFETY: the lock provides mutual exclusion over `data`.
unsafe impl<T: Send> Send for ReactiveMutex<T> {}
unsafe impl<T: Send> Sync for ReactiveMutex<T> {}

impl<T> ReactiveMutex<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> ReactiveMutex<T> {
        ReactiveMutex {
            lock: ReactiveLock::new(),
            data: std::cell::UnsafeCell::new(value),
        }
    }

    /// Acquire; the guard releases on drop.
    pub fn lock(&self) -> ReactiveGuard<'_, T> {
        let held = self.lock.acquire();
        ReactiveGuard {
            mutex: self,
            held: Some(held),
        }
    }

    /// Number of protocol switches the underlying lock performed.
    pub fn switches(&self) -> u64 {
        self.lock.switches()
    }

    /// Consume and return the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

/// Guard for [`ReactiveMutex`]; derefs to the protected data.
#[derive(Debug)]
pub struct ReactiveGuard<'a, T> {
    mutex: &'a ReactiveMutex<T>,
    held: Option<Held>,
}

impl<T> std::ops::Deref for ReactiveGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: we hold the lock.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> std::ops::DerefMut for ReactiveGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: we hold the lock exclusively.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T> Drop for ReactiveGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(held) = self.held.take() {
            self.mutex.lock.release(held);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ReactiveMutex<u64>>();
        assert_send_sync::<ReactiveLock>();
    }

    #[test]
    fn uncontended_stays_tts() {
        let l = ReactiveLock::new();
        for _ in 0..100 {
            let h = l.acquire();
            l.release(h);
        }
        assert_eq!(l.switches(), 0);
        assert_eq!(l.mode(), MODE_TTS);
    }

    #[test]
    fn mutex_guard_protects_data() {
        let m = Arc::new(ReactiveMutex::new(0u64));
        let threads = 8;
        let iters = 6_000;
        let hs: Vec<_> = (0..threads)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..iters {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), threads * iters);
    }

    #[test]
    fn contention_can_switch_and_stays_correct() {
        let m = Arc::new(ReactiveMutex::new(0u64));
        let threads = 16;
        let iters = 8_000;
        let hs: Vec<_> = (0..threads)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..iters {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), threads * iters);
        // Under this much contention the lock normally switches at least
        // once; we assert only correctness plus the counter being sane.
        assert!(m.switches() < 1_000_000);
    }

    #[test]
    fn phase_change_round_trip() {
        // Drive contention, then single-threaded use, and verify the
        // counter keeps counting across any switches.
        let m = Arc::new(ReactiveMutex::new(0u64));
        let hs: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..4_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        for _ in 0..15_000 {
            *m.lock() += 1;
        }
        assert_eq!(*m.lock(), 8 * 4_000 + 15_000);
    }

    #[test]
    fn into_inner() {
        let m = ReactiveMutex::new(7);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 8);
    }
}
