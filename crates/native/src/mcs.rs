//! The MCS queue lock (Figure 3.1) on host atomics.
//!
//! Each waiter spins on a flag in its own queue node (own cache line),
//! so a release invalidates exactly one remote cache and grants are
//! FIFO. Queue nodes are caller-provided stack pinning ([`McsNode`]),
//! keeping the lock allocation-free on the hot path.

use std::ptr;

use crossbeam_utils::CachePadded;

use crate::sync::{spin_loop, thread, AtomicBool, AtomicPtr, Ordering, YIELD_MASK};

/// A queue node; allocate one per acquisition (stack is fine: the node
/// must stay alive until `unlock` returns).
#[derive(Debug, Default)]
pub struct McsNode {
    next: AtomicPtr<McsNode>,
    locked: CachePadded<AtomicBool>,
}

impl McsNode {
    /// Fresh node.
    pub fn new() -> McsNode {
        McsNode::default()
    }
}

/// The MCS list-based queue lock.
#[derive(Debug, Default)]
pub struct McsLock {
    tail: AtomicPtr<McsNode>,
}

impl McsLock {
    /// Create an unlocked lock.
    pub const fn new() -> McsLock {
        McsLock {
            tail: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Acquire using `node` (must outlive the matching [`McsLock::unlock`]).
    ///
    /// Returns `true` if the queue was empty at enqueue time (the
    /// reactive lock's low-contention monitor).
    pub fn lock(&self, node: &McsNode) -> bool {
        // order: Relaxed — private initialization of our own node; the
        // tail swap below publishes it.
        node.next.store(ptr::null_mut(), Ordering::Relaxed);
        // order: Relaxed — same: not visible until the swap publishes.
        node.locked.store(true, Ordering::Relaxed);
        let me = node as *const McsNode as *mut McsNode;
        // order: AcqRel — Release publishes our initialized node to the
        // next enqueuer; Acquire sees the predecessor's initialized
        // node (pairs with the previous swap's Release half).
        let pred = self.tail.swap(me, Ordering::AcqRel);
        if pred.is_null() {
            return true;
        }
        // SAFETY: `pred` points to a node whose owner is either waiting
        // or in `unlock`, and in both cases keeps it alive until it has
        // signalled us (the MCS protocol's ownership contract).
        // order: Release publishes our node to the predecessor's
        // `unlock`, which loads `next` with Acquire.
        unsafe { (*pred).next.store(me, Ordering::Release) };
        let mut polls = 0u32;
        // order: Acquire pairs with the Release store in the
        // predecessor's `unlock`, handing us its critical section.
        while node.locked.load(Ordering::Acquire) {
            spin_loop();
            polls += 1;
            if polls.is_multiple_of(YIELD_MASK) {
                // Keep progress on oversubscribed hosts.
                thread::yield_now();
            }
        }
        false
    }

    /// Release using the node passed to [`McsLock::lock`].
    pub fn unlock(&self, node: &McsNode) {
        let me = node as *const McsNode as *mut McsNode;
        // order: Acquire pairs with the successor's Release link store,
        // so we see its initialized node before touching it.
        let mut next = node.next.load(Ordering::Acquire);
        if next.is_null() {
            // No known successor: try to swing the tail back to empty.
            // order: AcqRel on success — Release publishes our critical
            // section to the next empty-queue acquirer's Acquire swap;
            // Acquire on failure so the `next` re-load loop below sees
            // the racing enqueuer's node.
            if self
                .tail
                .compare_exchange(me, ptr::null_mut(), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
            // Someone is enqueueing behind us: wait for the link.
            let mut polls = 0u32;
            loop {
                // order: Acquire — pairs with the enqueuer's Release
                // link store (its node must be initialized before use).
                next = node.next.load(Ordering::Acquire);
                if !next.is_null() {
                    break;
                }
                spin_loop();
                polls += 1;
                if polls.is_multiple_of(YIELD_MASK) {
                    thread::yield_now();
                }
            }
        }
        // SAFETY: successor is alive and spinning on its `locked` flag.
        // order: Release pairs with the successor's Acquire spin,
        // handing over the critical section.
        unsafe { (*next).locked.store(false, Ordering::Release) };
    }

    /// Whether the queue is (instantaneously) empty.
    pub fn is_unlocked(&self) -> bool {
        // order: Relaxed — momentary snapshot, explicitly racy.
        self.tail.load(Ordering::Relaxed).is_null()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn uncontended() {
        let l = McsLock::new();
        let n = McsNode::new();
        assert!(l.lock(&n));
        assert!(!l.is_unlocked());
        l.unlock(&n);
        assert!(l.is_unlocked());
    }

    #[test]
    fn mutual_exclusion_stress() {
        use std::sync::atomic::AtomicU64;
        let l = Arc::new(McsLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        let threads = 8;
        let iters = 3_000;
        let hs: Vec<_> = (0..threads)
            .map(|_| {
                let l = l.clone();
                let c = counter.clone();
                std::thread::spawn(move || {
                    for _ in 0..iters {
                        let node = McsNode::new();
                        l.lock(&node);
                        // order: Relaxed — the lock orders these.
                        let v = c.load(Ordering::Relaxed);
                        // order: Relaxed — the lock orders these.
                        c.store(v + 1, Ordering::Relaxed);
                        l.unlock(&node);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        // order: Relaxed — all threads joined; no concurrency left.
        assert_eq!(counter.load(Ordering::Relaxed), threads * iters);
    }

    #[test]
    fn empty_queue_signal() {
        let l = McsLock::new();
        let a = McsNode::new();
        assert!(l.lock(&a), "first acquisition sees an empty queue");
        l.unlock(&a);
        let b = McsNode::new();
        assert!(l.lock(&b));
        l.unlock(&b);
    }
}
