//! The MCS queue lock (Figure 3.1) on host atomics.
//!
//! Each waiter spins on a flag in its own queue node (own cache line),
//! so a release invalidates exactly one remote cache and grants are
//! FIFO. Queue nodes are caller-provided stack pinning ([`McsNode`]),
//! keeping the lock allocation-free on the hot path.

use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

use crossbeam_utils::CachePadded;

/// A queue node; allocate one per acquisition (stack is fine: the node
/// must stay alive until `unlock` returns).
#[derive(Debug, Default)]
pub struct McsNode {
    next: AtomicPtr<McsNode>,
    locked: CachePadded<AtomicBool>,
}

impl McsNode {
    /// Fresh node.
    pub fn new() -> McsNode {
        McsNode::default()
    }
}

/// The MCS list-based queue lock.
#[derive(Debug, Default)]
pub struct McsLock {
    tail: AtomicPtr<McsNode>,
}

impl McsLock {
    /// Create an unlocked lock.
    pub const fn new() -> McsLock {
        McsLock {
            tail: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Acquire using `node` (must outlive the matching [`McsLock::unlock`]).
    ///
    /// Returns `true` if the queue was empty at enqueue time (the
    /// reactive lock's low-contention monitor).
    pub fn lock(&self, node: &McsNode) -> bool {
        node.next.store(ptr::null_mut(), Ordering::Relaxed);
        node.locked.store(true, Ordering::Relaxed);
        let me = node as *const McsNode as *mut McsNode;
        let pred = self.tail.swap(me, Ordering::AcqRel);
        if pred.is_null() {
            return true;
        }
        // SAFETY: `pred` points to a node whose owner is either waiting
        // or in `unlock`, and in both cases keeps it alive until it has
        // signalled us (the MCS protocol's ownership contract).
        unsafe { (*pred).next.store(me, Ordering::Release) };
        let mut polls = 0u32;
        while node.locked.load(Ordering::Acquire) {
            std::hint::spin_loop();
            polls += 1;
            if polls.is_multiple_of(256) {
                // Keep progress on oversubscribed hosts.
                std::thread::yield_now();
            }
        }
        false
    }

    /// Release using the node passed to [`McsLock::lock`].
    pub fn unlock(&self, node: &McsNode) {
        let me = node as *const McsNode as *mut McsNode;
        let mut next = node.next.load(Ordering::Acquire);
        if next.is_null() {
            // No known successor: try to swing the tail back to empty.
            if self
                .tail
                .compare_exchange(me, ptr::null_mut(), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
            // Someone is enqueueing behind us: wait for the link.
            let mut polls = 0u32;
            loop {
                next = node.next.load(Ordering::Acquire);
                if !next.is_null() {
                    break;
                }
                std::hint::spin_loop();
                polls += 1;
                if polls.is_multiple_of(256) {
                    std::thread::yield_now();
                }
            }
        }
        // SAFETY: successor is alive and spinning on its `locked` flag.
        unsafe { (*next).locked.store(false, Ordering::Release) };
    }

    /// Whether the queue is (instantaneously) empty.
    pub fn is_unlocked(&self) -> bool {
        self.tail.load(Ordering::Relaxed).is_null()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn uncontended() {
        let l = McsLock::new();
        let n = McsNode::new();
        assert!(l.lock(&n));
        assert!(!l.is_unlocked());
        l.unlock(&n);
        assert!(l.is_unlocked());
    }

    #[test]
    fn mutual_exclusion_stress() {
        use std::sync::atomic::AtomicU64;
        let l = Arc::new(McsLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        let threads = 8;
        let iters = 3_000;
        let hs: Vec<_> = (0..threads)
            .map(|_| {
                let l = l.clone();
                let c = counter.clone();
                std::thread::spawn(move || {
                    for _ in 0..iters {
                        let node = McsNode::new();
                        l.lock(&node);
                        let v = c.load(Ordering::Relaxed);
                        c.store(v + 1, Ordering::Relaxed);
                        l.unlock(&node);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), threads * iters);
    }

    #[test]
    fn empty_queue_signal() {
        let l = McsLock::new();
        let a = McsNode::new();
        assert!(l.lock(&a), "first acquisition sees an empty queue");
        l.unlock(&a);
        let b = McsNode::new();
        assert!(l.lock(&b));
        l.unlock(&b);
    }
}
