//! The turn-based model-checking runtime.
//!
//! One OS thread per model thread, serialized by a single turn token: a
//! thread runs user code until it reaches a *scheduling point* (every
//! shim operation is one), publishes the operation it is about to
//! perform, hands the turn to the scheduler, and blocks until granted.
//! The scheduler (the explorer thread) therefore sees the whole run as
//! a sequence of discrete choices — which thread's pending operation to
//! execute next — which is exactly what DFS exploration and replay
//! need.
//!
//! Happens-before bookkeeping (vector clocks per thread and per
//! object) runs at each granted operation, and plain-data accesses
//! through [`super::shim::RaceCell`] are checked against it: an access
//! not ordered after the last conflicting access is a data race and
//! fails the run with the trace as a counterexample.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool as StdAtomicBool, AtomicU64 as StdAtomicU64, Ordering as O};
use std::sync::{Arc, Condvar, Mutex};

use super::vc::Vc;

/// Distinguishes object generations across runs (a shim object created
/// outside the current run re-registers lazily on first touch).
static RUN_GEN: StdAtomicU64 = StdAtomicU64::new(1);

thread_local! {
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

#[derive(Clone)]
struct Ctx {
    rt: Arc<Rt>,
    tid: usize,
}

fn cur_ctx() -> Option<Ctx> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Panic payload used to tear a thread out of an aborted run; the
/// per-thread `catch_unwind` recognizes and swallows it.
pub(super) struct ModelAbort;

fn abort_panic() -> ! {
    std::panic::panic_any(ModelAbort)
}

/// What a thread is about to do at a scheduling point.
#[derive(Clone, Debug)]
pub struct OpDesc {
    /// Operation class (drives enabledness and happens-before edges).
    pub kind: OpKind,
    /// Trace label, e.g. `"AtomicBool::store"`.
    pub label: &'static str,
    /// Dense per-run id of the object acted on, if any.
    pub obj: Option<u32>,
}

/// Operation classes at scheduling points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// A thread's first point, before any user code runs.
    Start,
    /// Atomic load.
    Load,
    /// Atomic store.
    Store,
    /// Atomic read-modify-write (swap, CAS, fetch-add).
    Rmw,
    /// Shim mutex acquisition (disabled while held).
    MutexLock,
    /// Shim mutex release.
    MutexUnlock,
    /// `thread::park` (disabled until the park token is set).
    Park,
    /// `Thread::unpark` of the given model thread.
    Unpark(usize),
    /// Voluntary `yield_now` (the scheduler round-robins, no branching).
    Yield,
    /// `thread::spawn` of a child model thread.
    Spawn,
    /// `JoinHandle::join` (disabled until the target finishes).
    Join(usize),
    /// Plain read of a [`super::shim::RaceCell`].
    CellRead,
    /// Plain write of a [`super::shim::RaceCell`].
    CellWrite,
}

/// Happens-before edge the just-executed operation induces, derived by
/// the shim from the memory ordering (and, for CAS, the outcome).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Edge {
    /// No synchronization (Relaxed).
    None,
    /// Acquire: join the object's sync clock into the thread's.
    Acquire,
    /// Release: join the thread's clock into the object's.
    Release,
    /// Both directions (AcqRel / SeqCst RMW).
    AcqRel,
}

/// One executed operation, for counterexample printing.
#[derive(Clone, Debug)]
pub struct Step {
    /// Model thread id (0 is the scenario root).
    pub tid: usize,
    /// Operation label.
    pub label: &'static str,
    /// Object id, if any.
    pub obj: Option<u32>,
}

/// Why a run failed.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Human-readable description (race report, panic message, …).
    pub message: String,
    /// The executed schedule up to the failure — the counterexample.
    pub trace: Vec<Step>,
}

impl Failure {
    /// Render the counterexample as a replayable printed schedule.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "failure: {}", self.message);
        let _ = writeln!(out, "counterexample schedule ({} steps):", self.trace.len());
        for (i, s) in self.trace.iter().enumerate() {
            match s.obj {
                Some(o) => {
                    let _ = writeln!(out, "  {i:4}  t{} {} [obj {o}]", s.tid, s.label);
                }
                None => {
                    let _ = writeln!(out, "  {i:4}  t{} {}", s.tid, s.label);
                }
            }
        }
        out
    }
}

#[derive(Clone, Debug)]
enum ThState {
    /// Published a pending operation; waiting for the grant.
    AtPoint(OpDesc),
    /// Owns the turn and is executing user code.
    Running,
    /// Returned (or unwound) out of its body.
    Finished,
}

struct Th {
    state: ThState,
    vc: Vc,
    /// Clock joined on park return (set by unparkers).
    wake_vc: Vc,
    park_token: bool,
}

impl Th {
    fn new(vc: Vc) -> Th {
        Th {
            state: ThState::AtPoint(OpDesc {
                kind: OpKind::Start,
                label: "start",
                obj: None,
            }),
            vc,
            wake_vc: Vc::new(),
            park_token: false,
        }
    }
}

/// Per-object model state (atomics, mutexes and race cells share one
/// table; unused fields stay empty).
struct ObjState {
    /// First label that touched the object (trace context).
    name: &'static str,
    /// Release-store accumulation clock.
    sync_vc: Vc,
    /// Mutex holder.
    holder: Option<usize>,
    /// RaceCell: last writer (tid, epoch) and its label.
    write: Option<(usize, u32, &'static str)>,
    /// RaceCell: reads since the last write.
    reads: Vc,
}

impl ObjState {
    fn new(name: &'static str) -> ObjState {
        ObjState {
            name,
            sync_vc: Vc::new(),
            holder: None,
            write: None,
            reads: Vc::new(),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Turn {
    Sched,
    Thread(usize),
}

pub(super) struct Sched {
    turn: Turn,
    threads: Vec<Th>,
    objs: Vec<ObjState>,
    trace: Vec<Step>,
    /// Virtual nanoseconds: one tick per granted operation.
    clock: u64,
    /// Threads registered but not yet finished.
    live: usize,
    failure: Option<Failure>,
}

/// One model run's shared state: scheduler on the explorer thread,
/// model threads on their own OS threads, serialized via `m`/`cv`.
pub(super) struct Rt {
    m: Mutex<Sched>,
    cv: Condvar,
    abort: StdAtomicBool,
    /// Generation stamp for lazy object registration.
    gen: u64,
}

impl Rt {
    pub(super) fn new() -> Arc<Rt> {
        let mut root_vc = Vc::new();
        root_vc.bump(0);
        Arc::new(Rt {
            m: Mutex::new(Sched {
                turn: Turn::Sched,
                threads: vec![Th::new(root_vc)],
                objs: Vec::new(),
                trace: Vec::new(),
                clock: 0,
                live: 1,
                failure: None,
            }),
            cv: Condvar::new(),
            abort: StdAtomicBool::new(false),
            // order: Relaxed — plain unique-id counter.
            gen: RUN_GEN.fetch_add(1, O::Relaxed),
        })
    }

    fn aborting(&self) -> bool {
        // order: Relaxed — advisory flag; the scheduler mutex orders
        // every state it guards.
        self.abort.load(O::Relaxed)
    }

    fn set_abort(&self) {
        // order: Relaxed — see `aborting`.
        self.abort.store(true, O::Relaxed);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Sched> {
        self.m.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn fail(&self, s: &mut Sched, message: String) {
        if s.failure.is_none() {
            s.failure = Some(Failure {
                message,
                trace: s.trace.clone(),
            });
        }
        self.set_abort();
        self.cv.notify_all();
    }
}

/// Whether a model run is active on the current thread (and not
/// unwinding — during unwinds shims pass through so drop glue can't
/// recursively panic).
pub(super) fn in_run() -> bool {
    !std::thread::panicking() && cur_ctx().is_some()
}

/// Current virtual clock, if in a run.
pub(super) fn virtual_now() -> Option<u64> {
    let ctx = cur_ctx()?;
    if std::thread::panicking() {
        return None;
    }
    let s = ctx.rt.lock();
    Some(s.clock)
}

/// Resolve (lazily registering) the dense per-run id of a shim object.
/// Returns `None` outside a run.
pub(super) fn obj_id(cell: &StdAtomicU64, name: &'static str) -> Option<u32> {
    let ctx = cur_ctx()?;
    if std::thread::panicking() {
        return None;
    }
    // order: Relaxed — the cell is only written while its writer holds
    // the turn, and stale values only cause a harmless re-register.
    let v = cell.load(O::Relaxed);
    if v >> 32 == ctx.rt.gen & 0xffff_ffff {
        return Some((v & 0xffff_ffff) as u32 - 1);
    }
    let mut s = ctx.rt.lock();
    let id = s.objs.len() as u32;
    s.objs.push(ObjState::new(name));
    // order: Relaxed — see above.
    cell.store(
        ((ctx.rt.gen & 0xffff_ffff) << 32) | (id as u64 + 1),
        O::Relaxed,
    );
    Some(id)
}

/// Execute one operation at a scheduling point.
///
/// In a run: publish `op`, hand the turn to the scheduler, wait for the
/// grant, run `f` (the real memory effect), then do the happens-before
/// and state bookkeeping. Outside a run (or while unwinding), just run
/// `f`.
pub(super) fn point<R>(op: OpDesc, f: impl FnOnce() -> (R, Edge)) -> R {
    let Some(ctx) = cur_ctx() else {
        return f().0;
    };
    if std::thread::panicking() {
        return f().0;
    }
    let rt = ctx.rt.clone();
    {
        let mut s = rt.lock();
        if rt.aborting() {
            drop(s);
            abort_panic();
        }
        s.threads[ctx.tid].state = ThState::AtPoint(op.clone());
        s.turn = Turn::Sched;
        rt.cv.notify_all();
        loop {
            if rt.aborting() {
                drop(s);
                abort_panic();
            }
            if s.turn == Turn::Thread(ctx.tid) {
                break;
            }
            s = rt.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        // Granted. We own the turn until the next point, so effects and
        // bookkeeping below cannot interleave with other threads.
        s.threads[ctx.tid].state = ThState::Running;
    }
    let (r, edge) = f();
    let mut s = rt.lock();
    s.clock += 1;
    s.trace.push(Step {
        tid: ctx.tid,
        label: op.label,
        obj: op.obj,
    });
    apply_effect(&rt, &mut s, ctx.tid, &op, edge);
    if s.failure.is_some() {
        drop(s);
        abort_panic();
    }
    r
}

/// Happens-before and object-state bookkeeping for a granted op.
fn apply_effect(rt: &Rt, s: &mut Sched, tid: usize, op: &OpDesc, edge: Edge) {
    // Object-directed edges.
    if let Some(obj) = op.obj {
        let obj = obj as usize;
        match edge {
            Edge::None => {}
            Edge::Acquire => {
                let ovc = s.objs[obj].sync_vc.clone();
                s.threads[tid].vc.join(&ovc);
            }
            Edge::Release => {
                let tvc = s.threads[tid].vc.clone();
                s.objs[obj].sync_vc.join(&tvc);
                s.threads[tid].vc.bump(tid);
            }
            Edge::AcqRel => {
                let ovc = s.objs[obj].sync_vc.clone();
                s.threads[tid].vc.join(&ovc);
                let tvc = s.threads[tid].vc.clone();
                s.objs[obj].sync_vc.join(&tvc);
                s.threads[tid].vc.bump(tid);
            }
        }
    }
    match op.kind {
        OpKind::MutexLock => {
            let obj = op.obj.expect("mutex op has an object") as usize;
            debug_assert!(s.objs[obj].holder.is_none(), "granted a held mutex");
            s.objs[obj].holder = Some(tid);
            let ovc = s.objs[obj].sync_vc.clone();
            s.threads[tid].vc.join(&ovc);
        }
        OpKind::MutexUnlock => {
            let obj = op.obj.expect("mutex op has an object") as usize;
            debug_assert_eq!(s.objs[obj].holder, Some(tid), "unlock by non-holder");
            s.objs[obj].holder = None;
            let tvc = s.threads[tid].vc.clone();
            s.objs[obj].sync_vc.join(&tvc);
            s.threads[tid].vc.bump(tid);
            rt.cv.notify_all(); // blocked lockers become grantable
        }
        OpKind::Park => {
            debug_assert!(s.threads[tid].park_token, "granted a token-less park");
            s.threads[tid].park_token = false;
            let wvc = s.threads[tid].wake_vc.clone();
            s.threads[tid].vc.join(&wvc);
        }
        OpKind::Unpark(target) if target < s.threads.len() => {
            s.threads[target].park_token = true;
            let tvc = s.threads[tid].vc.clone();
            s.threads[target].wake_vc.join(&tvc);
            s.threads[tid].vc.bump(tid);
        }
        OpKind::Unpark(_) => {} // unpark of an unregistered/finished thread: no-op
        OpKind::Join(target) => {
            let tvc = s.threads[target].vc.clone();
            s.threads[tid].vc.join(&tvc);
        }
        OpKind::CellRead => {
            let obj = op.obj.expect("cell op has an object") as usize;
            if let Some((wt, wc, wlabel)) = s.objs[obj].write {
                if wt != tid && s.threads[tid].vc.get(wt) < wc {
                    let msg = format!(
                        "data race on {}: t{tid} {} is concurrent with t{wt} {wlabel}",
                        s.objs[obj].name, op.label
                    );
                    rt.fail(s, msg);
                    return;
                }
            }
            let epoch = s.threads[tid].vc.get(tid);
            s.objs[obj].reads.set(tid, epoch.max(1));
        }
        OpKind::CellWrite => {
            let obj = op.obj.expect("cell op has an object") as usize;
            if let Some((wt, wc, wlabel)) = s.objs[obj].write {
                if wt != tid && s.threads[tid].vc.get(wt) < wc {
                    let msg = format!(
                        "data race on {}: t{tid} {} is concurrent with t{wt} {wlabel}",
                        s.objs[obj].name, op.label
                    );
                    rt.fail(s, msg);
                    return;
                }
            }
            let reads = s.objs[obj].reads.clone();
            if !reads.leq(&s.threads[tid].vc) {
                let msg = format!(
                    "data race on {}: t{tid} {} is concurrent with an earlier read",
                    s.objs[obj].name, op.label
                );
                rt.fail(s, msg);
                return;
            }
            s.threads[tid].vc.bump(tid);
            let epoch = s.threads[tid].vc.get(tid);
            s.objs[obj].write = Some((tid, epoch, op.label));
            s.objs[obj].reads = Vc::new();
        }
        _ => {}
    }
}

/// Register a child thread (caller owns the turn via a just-granted
/// `Spawn` op) and return its tid.
fn register_child(rt: &Rt, parent: usize) -> usize {
    let mut s = rt.lock();
    let tid = s.threads.len();
    let mut vc = s.threads[parent].vc.clone();
    s.threads[parent].vc.bump(parent);
    vc.bump(tid);
    s.threads.push(Th::new(vc));
    s.live += 1;
    tid
}

/// Body wrapper for every model OS thread: waits for the `Start` grant,
/// runs `f` under `catch_unwind`, and publishes `Finished` whatever
/// happens. User panics (assertion failures) become run failures;
/// [`ModelAbort`] is swallowed.
fn thread_body(rt: Arc<Rt>, tid: usize, f: impl FnOnce()) {
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            rt: rt.clone(),
            tid,
        })
    });
    // Wait for the Start grant.
    let started = {
        let mut s = rt.lock();
        loop {
            if rt.aborting() {
                break false;
            }
            if s.turn == Turn::Thread(tid) {
                s.threads[tid].state = ThState::Running;
                s.clock += 1;
                s.trace.push(Step {
                    tid,
                    label: "start",
                    obj: None,
                });
                break true;
            }
            s = rt.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    };
    let result = if started {
        catch_unwind(AssertUnwindSafe(f))
    } else {
        Ok(())
    };
    let mut s = rt.lock();
    s.threads[tid].state = ThState::Finished;
    s.live -= 1;
    s.turn = Turn::Sched;
    if let Err(p) = result {
        if !p.is::<ModelAbort>() {
            let msg = p
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| p.downcast_ref::<&str>().map(|m| m.to_string()))
                .unwrap_or_else(|| "thread panicked (non-string payload)".to_string());
            rt.fail(&mut s, format!("t{tid} panicked: {msg}"));
        }
    }
    rt.cv.notify_all();
}

/// Spawn a model thread running `f`. Must be called from inside a run.
pub(super) fn spawn_model(f: impl FnOnce() + Send + 'static) -> usize {
    let ctx = cur_ctx().expect("spawn_model outside a run");
    point(
        OpDesc {
            kind: OpKind::Spawn,
            label: "thread::spawn",
            obj: None,
        },
        || ((), Edge::None),
    );
    let tid = register_child(&ctx.rt, ctx.tid);
    let rt = ctx.rt.clone();
    std::thread::Builder::new()
        .name(format!("model-t{tid}"))
        .spawn(move || thread_body(rt, tid, f))
        .expect("spawn model thread");
    tid
}

/// Join a model thread (blocks at a `Join` point until it finishes).
pub(super) fn join_model(tid: usize) {
    point(
        OpDesc {
            kind: OpKind::Join(tid),
            label: "JoinHandle::join",
            obj: None,
        },
        || ((), Edge::None),
    );
}

/// Current model tid, if in a run.
pub(super) fn current_tid() -> Option<usize> {
    cur_ctx().map(|c| c.tid)
}

/// Unpark a model thread from inside a run.
pub(super) fn unpark_model(target: usize) {
    point(
        OpDesc {
            kind: OpKind::Unpark(target),
            label: "Thread::unpark",
            obj: None,
        },
        || ((), Edge::None),
    );
}

/// Park the current model thread (blocks until a token arrives).
pub(super) fn park_model() {
    point(
        OpDesc {
            kind: OpKind::Park,
            label: "thread::park",
            obj: None,
        },
        || ((), Edge::None),
    );
}

/// Voluntary yield point.
pub(super) fn yield_model() {
    point(
        OpDesc {
            kind: OpKind::Yield,
            label: "thread::yield_now",
            obj: None,
        },
        || ((), Edge::None),
    );
}

// ---------------------------------------------------------------------
// Scheduler side (driven by the explorer).
// ---------------------------------------------------------------------

/// A recorded scheduling decision (one frame of the DFS stack).
#[derive(Clone, Debug)]
pub(super) struct Frame {
    /// Enabled tids, preferred choice first.
    pub options: Vec<usize>,
    /// Preemption cost of each option (0 = free, 1 = preemption).
    pub costs: Vec<u8>,
    /// Which option this run takes.
    pub idx: usize,
    /// Preemptions spent before this decision.
    pub budget_before: u8,
}

/// Outcome of one schedule execution.
pub(super) struct RunOutcome {
    pub failure: Option<Failure>,
    pub steps: u64,
    /// True when the run diverged from its replay prefix (internal
    /// error — exploration is unsound if this ever happens).
    pub diverged: bool,
}

fn op_enabled(s: &Sched, op: &OpDesc, tid: usize) -> bool {
    match op.kind {
        OpKind::MutexLock => {
            let obj = op.obj.expect("mutex op has an object") as usize;
            s.objs.get(obj).is_none_or(|o| o.holder.is_none())
        }
        OpKind::Park => s.threads[tid].park_token,
        OpKind::Join(target) => matches!(s.threads[target].state, ThState::Finished),
        _ => true,
    }
}

/// Execute one full schedule of `scenario`, replaying the choices in
/// `stack` and extending it with default choices past the prefix.
pub(super) fn run_schedule(
    scenario: &Arc<dyn Fn() + Send + Sync>,
    stack: &mut Vec<Frame>,
    max_steps: u64,
) -> RunOutcome {
    let rt = Rt::new();
    let root_rt = rt.clone();
    let root = std::thread::Builder::new()
        .name("model-t0".into())
        .spawn({
            let f = scenario.clone();
            move || thread_body(root_rt, 0, move || f())
        })
        .expect("spawn model root");

    let mut step: u64 = 0;
    let mut used: u8 = 0;
    let mut prev: Option<usize> = None;
    let mut diverged = false;
    {
        let mut s = rt.lock();
        'sched: loop {
            while s.turn != Turn::Sched && !rt.aborting() {
                s = rt.cv.wait(s).unwrap_or_else(|e| e.into_inner());
            }
            if s.failure.is_some() || rt.aborting() {
                break 'sched;
            }
            if s.live == 0 {
                break 'sched; // clean completion
            }
            // Enabled pending operations.
            let mut enabled: Vec<(usize, OpKind)> = Vec::new();
            let mut any_at_point = false;
            for (tid, th) in s.threads.iter().enumerate() {
                if let ThState::AtPoint(op) = &th.state {
                    any_at_point = true;
                    if op_enabled(&s, op, tid) {
                        enabled.push((tid, op.kind));
                    }
                }
            }
            if !any_at_point {
                // A spawned thread's OS thread hasn't published yet —
                // impossible by construction (spawn publishes AtPoint
                // synchronously), so treat as internal error.
                rt.fail(&mut s, "scheduler: no thread at a point".into());
                break 'sched;
            }
            if enabled.is_empty() {
                rt.fail(
                    &mut s,
                    "deadlock: every live thread is blocked (mutex/park/join)".into(),
                );
                break 'sched;
            }
            step += 1;
            if step > max_steps {
                rt.fail(
                    &mut s,
                    format!("step budget exceeded ({max_steps}): possible livelock"),
                );
                break 'sched;
            }
            // Decision: canonical option order.
            let prev_entry = prev.and_then(|p| enabled.iter().find(|(t, _)| *t == p).copied());
            let (options, costs) = match prev_entry {
                Some((p, OpKind::Yield)) => {
                    // Voluntary yield: deterministic round-robin, no
                    // branching (bounds spin-loop exploration).
                    let next = enabled
                        .iter()
                        .map(|&(t, _)| t)
                        .filter(|&t| t > p)
                        .min()
                        .or_else(|| enabled.iter().map(|&(t, _)| t).min())
                        .expect("enabled nonempty");
                    (vec![next], vec![0u8])
                }
                Some((p, _)) => {
                    // Continuing the running thread is free; switching
                    // away from a runnable thread is a preemption.
                    let mut options = vec![p];
                    let mut costs = vec![0u8];
                    for &(t, _) in &enabled {
                        if t != p {
                            options.push(t);
                            costs.push(1);
                        }
                    }
                    (options, costs)
                }
                None => {
                    // Previous thread blocked or finished: every switch
                    // is voluntary.
                    let options: Vec<usize> = enabled.iter().map(|&(t, _)| t).collect();
                    let costs = vec![0u8; options.len()];
                    (options, costs)
                }
            };
            let decision = (step - 1) as usize;
            let chosen = if decision < stack.len() {
                let f = &stack[decision];
                if f.options != options {
                    diverged = true;
                    rt.fail(
                        &mut s,
                        format!(
                            "replay divergence at step {decision}: expected options \
                             {:?}, found {options:?}",
                            f.options
                        ),
                    );
                    break 'sched;
                }
                used = f.budget_before + f.costs[f.idx];
                f.options[f.idx]
            } else {
                stack.push(Frame {
                    options: options.clone(),
                    costs,
                    idx: 0,
                    budget_before: used,
                });
                options[0]
            };
            s.turn = Turn::Thread(chosen);
            prev = Some(chosen);
            rt.cv.notify_all();
        }
        // Teardown: wake everything; threads at points abort out.
        rt.set_abort();
        rt.cv.notify_all();
        while s.live > 0 {
            s = rt.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }
    let _ = root.join();
    let failure = rt.lock().failure.take();
    RunOutcome {
        failure,
        steps: step,
        diverged,
    }
}
