//! CHESS-style bounded DFS over schedules.
//!
//! Each run of a scenario produces a stack of scheduling decisions
//! (frames); backtracking advances the deepest frame with an untried
//! alternative whose cumulative *preemption cost* stays within the
//! bound, truncates everything below it, and replays. Continuing the
//! running thread, or switching after a voluntary yield / block, is
//! free; switching away from a thread that could continue costs one
//! preemption. Musuvathi & Qadeer's iterative-context-bound result is
//! the soundness story: most concurrency bugs manifest within 2–3
//! preemptions, so a small bound explores a tiny fraction of the
//! schedule space yet finds the races that matter. The caveat: a pass
//! is a proof only up to the bound (and the monitor's
//! happens-before granularity), not a full proof of the algorithm.

use std::sync::Arc;

use super::rt::{run_schedule, Failure, Frame};

/// Exploration limits.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Preemption bound (CHESS context bound). 2 finds both seeded
    /// regression races; 3 is the thorough setting.
    pub preemptions: u8,
    /// Hard cap on explored schedules (safety net, not a target).
    pub max_schedules: u64,
    /// Per-run step cap (livelock guard).
    pub max_steps: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            preemptions: 2,
            max_schedules: 500_000,
            max_steps: 50_000,
        }
    }
}

/// Result of exploring one scenario.
#[derive(Debug)]
pub struct Report {
    /// Scenario name.
    pub name: String,
    /// Schedules executed.
    pub schedules: u64,
    /// Total scheduling decisions across all runs.
    pub steps: u64,
    /// First failure found, if any (exploration stops at the first).
    pub failure: Option<Failure>,
    /// True when the schedule cap stopped exploration early.
    pub truncated: bool,
}

impl Report {
    /// Whether the scenario passed (no failure within the bound).
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }
}

/// Exhaustively explore `scenario` under `cfg`'s preemption bound.
///
/// The scenario closure is executed once per schedule; it must create
/// all its shared state inside the closure (a fresh world per run) and
/// confine itself to the model shims for anything the checker should
/// control.
pub fn explore(name: &str, cfg: Config, scenario: Arc<dyn Fn() + Send + Sync>) -> Report {
    let mut stack: Vec<Frame> = Vec::new();
    let mut schedules = 0u64;
    let mut steps = 0u64;
    loop {
        let outcome = run_schedule(&scenario, &mut stack, cfg.max_steps);
        schedules += 1;
        steps += outcome.steps;
        if let Some(f) = outcome.failure {
            let mut f = f;
            if outcome.diverged {
                f.message = format!("internal: {}", f.message);
            }
            return Report {
                name: name.to_string(),
                schedules,
                steps,
                failure: Some(f),
                truncated: false,
            };
        }
        if schedules >= cfg.max_schedules {
            return Report {
                name: name.to_string(),
                schedules,
                steps,
                failure: None,
                truncated: true,
            };
        }
        // Backtrack: advance the deepest frame with an affordable
        // untried alternative.
        let advanced = loop {
            let Some(f) = stack.last_mut() else {
                break false;
            };
            let mut next = f.idx + 1;
            while next < f.options.len() && f.budget_before + f.costs[next] > cfg.preemptions {
                next += 1;
            }
            if next < f.options.len() {
                f.idx = next;
                break true;
            }
            stack.pop();
        };
        if !advanced {
            return Report {
                name: name.to_string(),
                schedules,
                steps,
                failure: None,
                truncated: false,
            };
        }
    }
}
