//! Trap-everything synchronization shims.
//!
//! Drop-in replacements for the `std` primitives the native protocols
//! use (`AtomicBool`, `AtomicU8`, `AtomicU64`, `AtomicPtr`, `Mutex`,
//! thread parking, `Instant`). Inside a model run every operation is a
//! scheduling point of [`super::rt`]; outside a run (or while a thread
//! unwinds) each shim passes straight through to the real primitive,
//! so `--features model` builds stay usable everywhere.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering};
use std::time::Duration;

use super::rt::{self, Edge, OpDesc, OpKind};

/// Lazily-assigned per-run object id (0 = unassigned; otherwise
/// generation-stamped so objects created in one run re-register in the
/// next).
#[derive(Debug)]
struct ObjId(StdAtomicU64);

impl ObjId {
    const fn new() -> ObjId {
        ObjId(StdAtomicU64::new(0))
    }
}

impl Default for ObjId {
    fn default() -> ObjId {
        ObjId::new()
    }
}

fn acq(ord: Ordering) -> bool {
    // order: meta — classifies a caller's ordering; not an access.
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn rel(ord: Ordering) -> bool {
    // order: meta — classifies a caller's ordering; not an access.
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn load_edge(ord: Ordering) -> Edge {
    if acq(ord) {
        Edge::Acquire
    } else {
        Edge::None
    }
}

fn store_edge(ord: Ordering) -> Edge {
    if rel(ord) {
        Edge::Release
    } else {
        Edge::None
    }
}

fn rmw_edge(ord: Ordering) -> Edge {
    match (acq(ord), rel(ord)) {
        (true, true) => Edge::AcqRel,
        (true, false) => Edge::Acquire,
        (false, true) => Edge::Release,
        (false, false) => Edge::None,
    }
}

/// Run `f` at a scheduling point against object `id` (pass-through when
/// no run is active).
fn shim_op<R>(
    id: &ObjId,
    name: &'static str,
    kind: OpKind,
    label: &'static str,
    f: impl FnOnce() -> (R, Edge),
) -> R {
    match rt::obj_id(&id.0, name) {
        None => f().0,
        Some(obj) => rt::point(
            OpDesc {
                kind,
                label,
                obj: Some(obj),
            },
            f,
        ),
    }
}

macro_rules! shim_atomic {
    ($name:ident, $std:ty, $t:ty) => {
        /// Model-checked drop-in for the matching `std` atomic.
        #[derive(Debug, Default)]
        pub struct $name {
            v: $std,
            id: ObjId,
        }

        impl $name {
            /// New atomic holding `v`.
            pub const fn new(v: $t) -> $name {
                $name {
                    v: <$std>::new(v),
                    id: ObjId::new(),
                }
            }

            /// Atomic load (a scheduling point in-run).
            pub fn load(&self, ord: Ordering) -> $t {
                shim_op(
                    &self.id,
                    stringify!($name),
                    OpKind::Load,
                    concat!(stringify!($name), "::load"),
                    || (self.v.load(ord), load_edge(ord)),
                )
            }

            /// Atomic store (a scheduling point in-run).
            pub fn store(&self, val: $t, ord: Ordering) {
                shim_op(
                    &self.id,
                    stringify!($name),
                    OpKind::Store,
                    concat!(stringify!($name), "::store"),
                    || (self.v.store(val, ord), store_edge(ord)),
                )
            }

            /// Atomic swap (a scheduling point in-run).
            pub fn swap(&self, val: $t, ord: Ordering) -> $t {
                shim_op(
                    &self.id,
                    stringify!($name),
                    OpKind::Rmw,
                    concat!(stringify!($name), "::swap"),
                    || (self.v.swap(val, ord), rmw_edge(ord)),
                )
            }

            /// Atomic compare-exchange (a scheduling point in-run). A
            /// failed exchange synchronizes per `fail` only.
            pub fn compare_exchange(
                &self,
                current: $t,
                new: $t,
                success: Ordering,
                fail: Ordering,
            ) -> Result<$t, $t> {
                shim_op(
                    &self.id,
                    stringify!($name),
                    OpKind::Rmw,
                    concat!(stringify!($name), "::compare_exchange"),
                    || {
                        let r = self.v.compare_exchange(current, new, success, fail);
                        let edge = match r {
                            Ok(_) => rmw_edge(success),
                            Err(_) => load_edge(fail),
                        };
                        (r, edge)
                    },
                )
            }

            /// Atomic fetch-add (a scheduling point in-run).
            #[allow(dead_code, trivial_numeric_casts)]
            pub fn fetch_add(&self, val: $t, ord: Ordering) -> $t
            where
                $std: FetchAdd<$t>,
            {
                shim_op(
                    &self.id,
                    stringify!($name),
                    OpKind::Rmw,
                    concat!(stringify!($name), "::fetch_add"),
                    || (FetchAdd::fetch_add(&self.v, val, ord), rmw_edge(ord)),
                )
            }
        }
    };
}

/// Helper trait so the macro can offer `fetch_add` only where the
/// underlying std atomic has it.
pub trait FetchAdd<T> {
    /// Forward to the std `fetch_add`.
    fn fetch_add(&self, val: T, ord: Ordering) -> T;
}

impl FetchAdd<u8> for std::sync::atomic::AtomicU8 {
    fn fetch_add(&self, val: u8, ord: Ordering) -> u8 {
        std::sync::atomic::AtomicU8::fetch_add(self, val, ord)
    }
}

impl FetchAdd<u64> for std::sync::atomic::AtomicU64 {
    fn fetch_add(&self, val: u64, ord: Ordering) -> u64 {
        std::sync::atomic::AtomicU64::fetch_add(self, val, ord)
    }
}

shim_atomic!(AtomicU8, std::sync::atomic::AtomicU8, u8);
shim_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);

/// Model-checked drop-in for `std::sync::atomic::AtomicBool`.
#[derive(Debug, Default)]
pub struct AtomicBool {
    v: std::sync::atomic::AtomicBool,
    id: ObjId,
}

impl AtomicBool {
    /// New atomic holding `v`.
    pub const fn new(v: bool) -> AtomicBool {
        AtomicBool {
            v: std::sync::atomic::AtomicBool::new(v),
            id: ObjId::new(),
        }
    }

    /// Atomic load (a scheduling point in-run).
    pub fn load(&self, ord: Ordering) -> bool {
        shim_op(
            &self.id,
            "AtomicBool",
            OpKind::Load,
            "AtomicBool::load",
            || (self.v.load(ord), load_edge(ord)),
        )
    }

    /// Atomic store (a scheduling point in-run).
    pub fn store(&self, val: bool, ord: Ordering) {
        shim_op(
            &self.id,
            "AtomicBool",
            OpKind::Store,
            "AtomicBool::store",
            || (self.v.store(val, ord), store_edge(ord)),
        )
    }

    /// Atomic compare-exchange (a scheduling point in-run).
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        fail: Ordering,
    ) -> Result<bool, bool> {
        shim_op(
            &self.id,
            "AtomicBool",
            OpKind::Rmw,
            "AtomicBool::compare_exchange",
            || {
                let r = self.v.compare_exchange(current, new, success, fail);
                let edge = match r {
                    Ok(_) => rmw_edge(success),
                    Err(_) => load_edge(fail),
                };
                (r, edge)
            },
        )
    }
}

/// Model-checked drop-in for `std::sync::atomic::AtomicPtr`.
#[derive(Debug)]
pub struct AtomicPtr<T> {
    v: std::sync::atomic::AtomicPtr<T>,
    id: ObjId,
}

impl<T> Default for AtomicPtr<T> {
    fn default() -> AtomicPtr<T> {
        AtomicPtr::new(std::ptr::null_mut())
    }
}

impl<T> AtomicPtr<T> {
    /// New atomic holding `p`.
    pub const fn new(p: *mut T) -> AtomicPtr<T> {
        AtomicPtr {
            v: std::sync::atomic::AtomicPtr::new(p),
            id: ObjId::new(),
        }
    }

    /// Atomic load (a scheduling point in-run).
    pub fn load(&self, ord: Ordering) -> *mut T {
        shim_op(
            &self.id,
            "AtomicPtr",
            OpKind::Load,
            "AtomicPtr::load",
            || (self.v.load(ord), load_edge(ord)),
        )
    }

    /// Atomic store (a scheduling point in-run).
    pub fn store(&self, p: *mut T, ord: Ordering) {
        shim_op(
            &self.id,
            "AtomicPtr",
            OpKind::Store,
            "AtomicPtr::store",
            || (self.v.store(p, ord), store_edge(ord)),
        )
    }

    /// Atomic swap (a scheduling point in-run).
    pub fn swap(&self, p: *mut T, ord: Ordering) -> *mut T {
        shim_op(
            &self.id,
            "AtomicPtr",
            OpKind::Rmw,
            "AtomicPtr::swap",
            || (self.v.swap(p, ord), rmw_edge(ord)),
        )
    }

    /// Atomic compare-exchange (a scheduling point in-run).
    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        fail: Ordering,
    ) -> Result<*mut T, *mut T> {
        shim_op(
            &self.id,
            "AtomicPtr",
            OpKind::Rmw,
            "AtomicPtr::compare_exchange",
            || {
                let r = self.v.compare_exchange(current, new, success, fail);
                let edge = match r {
                    Ok(_) => rmw_edge(success),
                    Err(_) => load_edge(fail),
                };
                (r, edge)
            },
        )
    }
}

/// Poison marker for the shim [`Mutex`] (API parity with `std`).
#[derive(Debug)]
pub struct Poisoned;

/// Model-checked drop-in for `std::sync::Mutex`. In-run, acquisition
/// order is a scheduler decision and lock/unlock carry the usual
/// happens-before edges; the real inner mutex is still taken (it can
/// never block, the scheduler admits one holder at a time).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    id: ObjId,
}

impl<T> Mutex<T> {
    /// New mutex holding `v`.
    pub const fn new(v: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(v),
            id: ObjId::new(),
        }
    }

    /// Acquire (a blocking scheduling point in-run).
    pub fn lock(&self) -> Result<MutexGuard<'_, T>, Poisoned> {
        if let Some(obj) = rt::obj_id(&self.id.0, "Mutex") {
            rt::point(
                OpDesc {
                    kind: OpKind::MutexLock,
                    label: "Mutex::lock",
                    obj: Some(obj),
                },
                || ((), Edge::None),
            );
            let g = self
                .inner
                .try_lock()
                .expect("model invariant: scheduler admits one mutex holder");
            Ok(MutexGuard {
                g: Some(g),
                model_obj: Some(obj),
            })
        } else {
            match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    g: Some(g),
                    model_obj: None,
                }),
                Err(_) => Err(Poisoned),
            }
        }
    }
}

/// Guard for the shim [`Mutex`].
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    g: Option<std::sync::MutexGuard<'a, T>>,
    model_obj: Option<u32>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.g.as_ref().expect("guard present")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.g.as_mut().expect("guard present")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(obj) = self.model_obj {
            if rt::in_run() {
                rt::point(
                    OpDesc {
                        kind: OpKind::MutexUnlock,
                        label: "Mutex::unlock",
                        obj: Some(obj),
                    },
                    || ((), Edge::None),
                );
            }
            // The real guard drops after the model unlock; no other
            // thread can run until our next scheduling point, so the
            // next holder's try_lock still succeeds.
        }
        self.g = None;
    }
}

/// Threading shims: spawn/join/park/unpark/yield as scheduling points.
pub mod thread {
    use super::super::rt;

    /// Handle to a (possibly model-) thread, as from [`current`].
    #[derive(Clone, Debug)]
    pub struct Thread {
        tid: Option<usize>,
        real: std::thread::Thread,
    }

    impl Thread {
        /// Wake the thread (sets the park token in-run).
        pub fn unpark(&self) {
            match self.tid {
                Some(t) if rt::in_run() => rt::unpark_model(t),
                _ => self.real.unpark(),
            }
        }
    }

    /// The current thread's handle.
    pub fn current() -> Thread {
        Thread {
            tid: rt::current_tid(),
            real: std::thread::current(),
        }
    }

    /// Park the current thread (a blocking scheduling point in-run).
    pub fn park() {
        if rt::in_run() {
            rt::park_model();
        } else {
            std::thread::park();
        }
    }

    /// Voluntarily yield (round-robins the model scheduler in-run).
    pub fn yield_now() {
        if rt::in_run() {
            rt::yield_model();
        } else {
            std::thread::yield_now();
        }
    }

    /// Handle to a spawned thread.
    #[derive(Debug)]
    pub struct JoinHandle {
        tid: Option<usize>,
        real: Option<std::thread::JoinHandle<()>>,
    }

    impl JoinHandle {
        /// Wait for the thread (a blocking scheduling point in-run).
        pub fn join(mut self) -> std::thread::Result<()> {
            if let Some(t) = self.tid {
                rt::join_model(t);
            }
            match self.real.take() {
                Some(h) => h.join(),
                None => Ok(()),
            }
        }
    }

    /// Spawn a thread. In-run this registers a model thread whose every
    /// shim operation the scheduler controls; outside a run it is a
    /// plain `std::thread::spawn`.
    pub fn spawn(f: impl FnOnce() + Send + 'static) -> JoinHandle {
        if rt::in_run() {
            let tid = rt::spawn_model(f);
            JoinHandle {
                tid: Some(tid),
                real: None,
            }
        } else {
            JoinHandle {
                tid: None,
                real: Some(std::thread::spawn(f)),
            }
        }
    }
}

/// CPU relax hint; never a scheduling point (the surrounding loads
/// already are), so spin loops cost no exploration.
#[inline]
pub fn spin_loop() {
    std::hint::spin_loop();
}

/// Model-checked drop-in for `std::time::Instant`. In-run, time is the
/// virtual step clock (one nanosecond per granted operation), keeping
/// deadline-based polling loops — two-phase waiting's first phase —
/// deterministic, replayable and finite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Instant {
    /// Wall-clock time (outside a run).
    Real(std::time::Instant),
    /// Virtual step-clock time (inside a run).
    Virtual(u64),
}

impl Instant {
    /// The current (virtual or real) time.
    pub fn now() -> Instant {
        match rt::virtual_now() {
            Some(v) => Instant::Virtual(v),
            None => Instant::Real(std::time::Instant::now()),
        }
    }

    /// Time elapsed since `self`.
    pub fn elapsed(&self) -> Duration {
        match *self {
            Instant::Real(i) => i.elapsed(),
            Instant::Virtual(v) => {
                let now = rt::virtual_now().unwrap_or(v);
                Duration::from_nanos(now.saturating_sub(v))
            }
        }
    }
}

impl std::ops::Add<Duration> for Instant {
    type Output = Instant;

    fn add(self, d: Duration) -> Instant {
        match self {
            Instant::Real(i) => Instant::Real(i + d),
            Instant::Virtual(v) => Instant::Virtual(v.saturating_add(d.as_nanos() as u64)),
        }
    }
}

impl PartialOrd for Instant {
    /// Ordered within a domain; mixed real/virtual compare as `None`
    /// (a `<` on mixed instants is simply `false`).
    fn partial_cmp(&self, other: &Instant) -> Option<std::cmp::Ordering> {
        match (self, other) {
            (Instant::Real(a), Instant::Real(b)) => a.partial_cmp(b),
            (Instant::Virtual(a), Instant::Virtual(b)) => a.partial_cmp(b),
            _ => None,
        }
    }
}

/// Plain (non-atomic) shared data under race detection: the model's
/// stand-in for "the data the lock protects". Every access is checked
/// against the vector-clock happens-before relation; two unordered
/// accesses (at least one a write) fail the run with a counterexample.
#[derive(Debug)]
pub struct RaceCell<T> {
    v: UnsafeCell<T>,
    id: ObjId,
    name: &'static str,
}

// SAFETY: accesses are serialized by the model scheduler (one thread
// owns the turn at a time) and checked for logical races; outside a
// run RaceCell is only sound single-threaded, which is all the
// pass-through path is used for.
unsafe impl<T: Send> Send for RaceCell<T> {}
// SAFETY: as above.
unsafe impl<T: Send> Sync for RaceCell<T> {}

impl<T: Copy> RaceCell<T> {
    /// New cell named `name` (the name appears in race reports).
    pub const fn new(name: &'static str, v: T) -> RaceCell<T> {
        RaceCell {
            v: UnsafeCell::new(v),
            id: ObjId::new(),
            name,
        }
    }

    /// Read the value (race-checked scheduling point in-run).
    pub fn get(&self) -> T {
        shim_op(
            &self.id,
            self_name(self),
            OpKind::CellRead,
            "RaceCell::get",
            || {
                // SAFETY: the scheduler serializes model threads; the race
                // detector reports (rather than prevents) logical races,
                // and the underlying reads never overlap writes in time.
                (unsafe { *self.v.get() }, Edge::None)
            },
        )
    }

    /// Write the value (race-checked scheduling point in-run).
    pub fn set(&self, val: T) {
        shim_op(
            &self.id,
            self_name(self),
            OpKind::CellWrite,
            "RaceCell::set",
            || {
                // SAFETY: as in `get` — accesses are time-serialized.
                (unsafe { *self.v.get() = val }, Edge::None)
            },
        )
    }
}

fn self_name<T>(c: &RaceCell<T>) -> &'static str {
    c.name
}
