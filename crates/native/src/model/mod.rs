//! A loom-style bounded model checker for the native protocols.
//!
//! Compiled only under `--features model`. The pieces:
//!
//! * [`shim`] — drop-in `AtomicBool`/`AtomicU8`/`AtomicU64`/
//!   `AtomicPtr`/`Mutex`/parking/`Instant` replacements that trap every
//!   shared-memory access as a scheduling point (the protocols import
//!   them through [`crate::sync`]).
//! * [`rt`](self) — a turn-based runtime: one OS thread per model
//!   thread, strictly serialized, so a run is a deterministic,
//!   replayable sequence of scheduling decisions.
//! * [`explore`] — CHESS-style DFS over those decisions with a
//!   preemption bound, plus a vector-clock happens-before race
//!   detector over [`shim::RaceCell`] accesses.
//!
//! A failing schedule (data race, assertion failure, deadlock, step
//! budget) is reported as a [`Failure`] whose trace prints as a
//! replayable schedule. `crates/check`'s `conc-check` binary wraps
//! this with the repo's lock scenarios and the seeded regression
//! mutants.

mod explore;
mod rt;
pub mod shim;
mod vc;

pub use explore::{explore, Config, Report};
pub use rt::{Failure, OpDesc, OpKind, Step};
pub use shim::RaceCell;

/// Thread shims (spawn/join/park/unpark/yield) for scenario code.
pub use shim::thread;
