//! Vector clocks for the happens-before race detector.

/// A vector clock: `vc[t]` is the latest epoch of thread `t` known to
/// happen-before the owner's next operation. Sparse-tail semantics:
/// missing entries read as 0.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Vc(Vec<u32>);

impl Vc {
    /// The empty (all-zero) clock.
    pub const fn new() -> Vc {
        Vc(Vec::new())
    }

    /// Component for thread `t`.
    pub fn get(&self, t: usize) -> u32 {
        self.0.get(t).copied().unwrap_or(0)
    }

    /// Set component `t` to `v`.
    pub fn set(&mut self, t: usize, v: u32) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] = v;
    }

    /// Increment component `t` (a new epoch for thread `t`).
    pub fn bump(&mut self, t: usize) {
        let v = self.get(t);
        self.set(t, v + 1);
    }

    /// Pointwise maximum with `o` (inherit everything `o` has seen).
    pub fn join(&mut self, o: &Vc) {
        if self.0.len() < o.0.len() {
            self.0.resize(o.0.len(), 0);
        }
        for (a, b) in self.0.iter_mut().zip(&o.0) {
            *a = (*a).max(*b);
        }
    }

    /// Whether every component of `self` is ≤ the same component of `o`
    /// (i.e. everything in `self` happens-before `o`'s owner).
    pub fn leq(&self, o: &Vc) -> bool {
        self.0.iter().enumerate().all(|(t, &v)| v <= o.get(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_leq() {
        let mut a = Vc::new();
        a.set(0, 3);
        let mut b = Vc::new();
        b.set(1, 2);
        assert!(!a.leq(&b));
        b.join(&a);
        assert!(a.leq(&b));
        assert_eq!(b.get(0), 3);
        assert_eq!(b.get(1), 2);
    }

    #[test]
    fn bump_grows() {
        let mut a = Vc::new();
        a.bump(2);
        assert_eq!(a.get(2), 1);
        assert_eq!(a.get(0), 0);
    }
}
