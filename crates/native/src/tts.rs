//! Test-and-test-and-set spin lock with randomized exponential backoff
//! (Anderson, §3.1.1) on host atomics.

use std::cell::Cell;

use crate::sync::{spin_loop, thread, AtomicBool, Ordering, YIELD_MASK};

/// Per-thread xorshift for backoff jitter. Returns 0 under the model
/// checker: jittered spinning adds no interleavings (every shim access
/// is already a scheduling point) and would break deterministic replay.
fn jitter(bound: u32) -> u32 {
    if cfg!(feature = "model") {
        return 0;
    }
    thread_local! {
        static S: Cell<u64> = const { Cell::new(0x9E37_79B9_7F4A_7C15) };
    }
    S.with(|s| {
        let mut x = s.get() ^ (std::thread::current().id().as_u64_hack());
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        s.set(x);
        if bound == 0 {
            0
        } else {
            (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) as u32 % bound
        }
    })
}

/// Portable stand-in for thread-id entropy (ThreadId has no stable
/// integer accessor; hashing the Debug form is enough for jitter).
trait IdHack {
    fn as_u64_hack(&self) -> u64;
}

impl IdHack for std::thread::ThreadId {
    fn as_u64_hack(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

/// Test-and-test-and-set spin lock with randomized exponential backoff.
///
/// Minimal uncontended latency (one compare-exchange); melts down under
/// heavy contention — pair with [`crate::McsLock`] via
/// [`crate::ReactiveLock`].
#[derive(Debug, Default)]
pub struct TtsLock {
    flag: AtomicBool,
}

/// Initial backoff spin iterations.
const INITIAL: u32 = crate::sync::BACKOFF_INITIAL;
/// Backoff cap.
const MAX: u32 = crate::sync::BACKOFF_MAX;

impl TtsLock {
    /// Create an unlocked lock.
    pub const fn new() -> TtsLock {
        TtsLock {
            flag: AtomicBool::new(false),
        }
    }

    /// Try once; `true` on success.
    #[inline]
    pub fn try_lock(&self) -> bool {
        // order: Relaxed — cheap "looks free?" probe; the CAS below is
        // the access that must synchronize.
        !self.flag.load(Ordering::Relaxed)
            && self
                .flag
                // order: Acquire on success pairs with the Release store
                // in `unlock`, making the previous holder's critical
                // section visible; a failed CAS publishes nothing, so
                // Relaxed.
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
    }

    /// Acquire, spinning with randomized exponential backoff. Returns
    /// the number of failed attempts (the reactive lock's contention
    /// monitor).
    pub fn lock_counting(&self) -> u64 {
        let mut failures = 0u64;
        let mut delay = INITIAL;
        loop {
            if self.try_lock() {
                return failures;
            }
            failures += 1;
            for _ in 0..jitter(delay) {
                spin_loop();
            }
            // Under the model feature INITIAL/MAX are both 0, which makes
            // this `min` trivially true — harmless, keep the real shape.
            #[allow(clippy::unnecessary_min_or_max)]
            {
                delay = (delay * 2).min(MAX);
            }
            // Read-poll the cached flag; yield to the OS periodically so
            // oversubscribed hosts still make progress.
            let mut polls = 0u32;
            // order: Relaxed — wait until the flag *looks* free; the
            // acquiring CAS in `try_lock` provides the real edge.
            while self.flag.load(Ordering::Relaxed) {
                spin_loop();
                polls += 1;
                if polls.is_multiple_of(YIELD_MASK) {
                    thread::yield_now();
                }
            }
        }
    }

    /// Acquire.
    pub fn lock(&self) {
        self.lock_counting();
    }

    /// Release.
    ///
    /// # Panics
    /// Debug-asserts the lock was held (a hard assert under the model
    /// checker, so release-mode `conc-check` runs still catch a
    /// double-release — the signature of the double-commit race).
    pub fn unlock(&self) {
        if cfg!(debug_assertions) || cfg!(feature = "model") {
            assert!(
                // order: Relaxed — diagnostic read; we already hold the
                // lock, so no concurrent writer exists.
                self.flag.load(Ordering::Relaxed),
                "unlock of unheld TtsLock"
            );
        }
        // order: Release pairs with the Acquire CAS in `try_lock`,
        // publishing the critical section to the next holder.
        self.flag.store(false, Ordering::Release);
    }

    /// Whether the lock is currently held (racy; diagnostics only).
    pub fn is_locked(&self) -> bool {
        // order: Relaxed — momentary snapshot, explicitly racy.
        self.flag.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn uncontended_lock_unlock() {
        let l = TtsLock::new();
        assert!(!l.is_locked());
        l.lock();
        assert!(l.is_locked());
        assert!(!l.try_lock());
        l.unlock();
        assert!(l.try_lock());
        l.unlock();
    }

    #[test]
    fn mutual_exclusion_stress() {
        use std::sync::atomic::AtomicU64;
        let l = Arc::new(TtsLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        let threads = 8;
        let iters = 3_000;
        let hs: Vec<_> = (0..threads)
            .map(|_| {
                let l = l.clone();
                let c = counter.clone();
                std::thread::spawn(move || {
                    for _ in 0..iters {
                        l.lock();
                        // Split read/write: loses updates unless the
                        // lock really excludes.
                        // order: Relaxed — the lock orders these.
                        let v = c.load(Ordering::Relaxed);
                        // order: Relaxed — the lock orders these.
                        c.store(v + 1, Ordering::Relaxed);
                        l.unlock();
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        // order: Relaxed — all threads joined; no concurrency left.
        assert_eq!(counter.load(Ordering::Relaxed), threads * iters);
    }
}
