//! Synchronization facade for the native protocols.
//!
//! Every protocol file imports its atomics, mutexes, thread parking and
//! clock through this module instead of `std`, so the whole native
//! world can be compiled in two shapes:
//!
//! * **default** — thin re-exports of the real `std` primitives; zero
//!   cost, identical behavior to writing `std::sync::atomic::*`
//!   directly.
//! * **`--features model`** — the `conc-check` model checker's shims
//!   (`crate::model::shim`): every shared-memory access becomes a
//!   scheduling point of a deterministic turn-based scheduler, which
//!   explores interleavings exhaustively under a preemption bound and
//!   runs a vector-clock race detector over the trapped accesses.
//!
//! The shims pass through to the real primitives whenever no model run
//! is active on the current thread, so `model` builds remain usable
//! outside the checker (e.g. `cargo test --features model`).

/// Memory orderings are always the `std` type; the shims interpret them
/// to build happens-before edges.
pub use std::sync::atomic::Ordering;

#[cfg(not(feature = "model"))]
mod real {
    pub use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicU8};
    pub use std::sync::{Mutex, MutexGuard};
    pub use std::time::Instant;

    /// Threading primitives the protocols use (parking and yielding).
    pub mod thread {
        pub use std::thread::{current, park, spawn, yield_now, JoinHandle, Thread};
    }

    /// CPU relax hint inside spin loops.
    #[inline]
    pub fn spin_loop() {
        std::hint::spin_loop();
    }
}

#[cfg(not(feature = "model"))]
pub use real::*;

#[cfg(feature = "model")]
pub use crate::model::shim::{
    spin_loop, thread, AtomicBool, AtomicPtr, AtomicU64, AtomicU8, Instant, Mutex, MutexGuard,
};

/// Polls between `yield_now` calls in spin-wait loops. Under the model
/// this is 1 so every failed probe reaches a voluntary yield point and
/// the scheduler's round-robin rule keeps spinners from monopolizing
/// the (finite) exploration budget.
pub const YIELD_MASK: u32 = if cfg!(feature = "model") { 1 } else { 256 };

/// Polls between mode-hint re-checks in the reactive lock's TTS wait
/// loop (see `acquire_tts_watching_mode`). 1 under the model so a mode
/// change is noticed after a single probe.
pub const MODE_CHECK_MASK: u32 = if cfg!(feature = "model") { 1 } else { 64 };

/// Initial backoff spin iterations for TTS-style locks; 0 under the
/// model (backoff burns steps without adding interleavings — every
/// shim access is already a preemption point).
pub const BACKOFF_INITIAL: u32 = if cfg!(feature = "model") { 0 } else { 8 };

/// Backoff cap, scaled down with [`BACKOFF_INITIAL`].
pub const BACKOFF_MAX: u32 = if cfg!(feature = "model") { 0 } else { 4_096 };
