//! Sanity checks for the model runtime itself (only with `--features
//! model`): the checker must find an obvious race and must pass an
//! obviously correct lock.

#![cfg(feature = "model")]

use std::sync::Arc;

use reactive_native::model::{explore, thread, Config, RaceCell};
use reactive_native::TtsLock;

fn quick() -> Config {
    Config {
        preemptions: 2,
        max_schedules: 50_000,
        max_steps: 10_000,
    }
}

#[test]
fn finds_unlocked_counter_race() {
    let report = explore(
        "unlocked-counter",
        quick(),
        Arc::new(|| {
            let c = Arc::new(RaceCell::new("counter", 0u64));
            let c2 = c.clone();
            let h = thread::spawn(move || {
                let v = c2.get();
                c2.set(v + 1);
            });
            let v = c.get();
            c.set(v + 1);
            h.join().unwrap();
        }),
    );
    let failure = report.failure.expect("unlocked increment must race");
    assert!(
        failure.message.contains("data race on counter"),
        "unexpected failure: {}",
        failure.render()
    );
}

#[test]
fn tts_lock_protects_counter() {
    let report = explore(
        "tts-counter",
        quick(),
        Arc::new(|| {
            let l = Arc::new(TtsLock::new());
            let c = Arc::new(RaceCell::new("counter", 0u64));
            let (l2, c2) = (l.clone(), c.clone());
            let h = thread::spawn(move || {
                l2.lock();
                let v = c2.get();
                c2.set(v + 1);
                l2.unlock();
            });
            l.lock();
            let v = c.get();
            c.set(v + 1);
            l.unlock();
            h.join().unwrap();
            assert_eq!(c.get(), 2, "both increments must land");
        }),
    );
    assert!(
        report.failure.is_none(),
        "TTS must be race-free: {}",
        report.failure.unwrap().render()
    );
    assert!(report.schedules > 1, "exploration must branch");
}

#[test]
fn catches_assertion_failures_as_counterexamples() {
    let report = explore(
        "failing-assert",
        quick(),
        Arc::new(|| {
            let c = Arc::new(RaceCell::new("flag", 0u64));
            let c2 = c.clone();
            let h = thread::spawn(move || c2.set(1));
            // Racy in outcome but not in access order… actually this
            // asserts a schedule-dependent value: some interleaving
            // violates it, and the checker must surface that schedule.
            h.join().unwrap();
            assert_eq!(c.get(), 1);
        }),
    );
    assert!(
        report.passed(),
        "join orders the write: {:?}",
        report.failure
    );

    let report = explore(
        "failing-assert-2",
        quick(),
        Arc::new(|| {
            let l = Arc::new(TtsLock::new());
            let l2 = l.clone();
            let h = thread::spawn(move || {
                l2.lock();
                l2.unlock();
            });
            // Schedule-dependent: fails when the child wins the lock
            // first. The checker must find that interleaving.
            assert!(l.try_lock(), "child held the lock first");
            l.unlock();
            h.join().unwrap();
        }),
    );
    let failure = report.failure.expect("some schedule must fail the assert");
    assert!(failure.message.contains("child held the lock first"));
}
