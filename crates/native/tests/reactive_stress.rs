//! Native stress test: hammer [`ReactiveMutex`] from 8 threads while a
//! hostile policy forces protocol flips far more often than any sane
//! monitor would, and assert mutual exclusion and no lost wakeups
//! (every thread finishes every iteration). The [`SwitchLog`] sink
//! confirms the flips actually happened and were coherent.

use std::sync::Arc;

use reactive_native::api::{Decision, Observation, Policy, SwitchLog};
use reactive_native::reactive::{PROTO_QUEUE, PROTO_TTS};
use reactive_native::{ReactiveLock, ReactiveMutex};

/// "Always, with alternating signals": an [`reactive_native::api::Always`]-style
/// policy whose input is overridden to alternate — every `period`-th
/// observation is treated as a sub-optimality signal for the *other*
/// protocol, so the lock is forced to flip TTS ⇄ queue continuously
/// under load.
struct ForcedFlip {
    period: u64,
    seen: u64,
}

impl Policy for ForcedFlip {
    fn decide(&mut self, obs: &Observation) -> Decision {
        self.seen += 1;
        if self.seen.is_multiple_of(self.period) {
            let other = if obs.current == PROTO_TTS {
                PROTO_QUEUE
            } else {
                PROTO_TTS
            };
            Decision::SwitchTo(other)
        } else {
            Decision::Stay
        }
    }
}

#[test]
fn forced_flips_keep_mutual_exclusion_and_lose_no_wakeups() {
    let threads = 8u64;
    let iters = 10_000u64;
    let log = Arc::new(SwitchLog::new());
    let m = Arc::new(ReactiveMutex::with_lock(
        ReactiveLock::builder()
            .policy(ForcedFlip {
                period: 50,
                seen: 0,
            })
            .instrument(log.clone())
            .build(),
        0u64,
    ));

    let hs: Vec<_> = (0..threads)
        .map(|_| {
            let m = m.clone();
            std::thread::spawn(move || {
                for _ in 0..iters {
                    // Non-atomic read-modify-write: any mutual-exclusion
                    // violation shows up as a lost increment.
                    let mut g = m.lock();
                    let v = *g;
                    std::hint::spin_loop();
                    *g = v + 1;
                }
            })
        })
        .collect();
    // Joining every thread is the no-lost-wakeups check: a waiter
    // stranded on an invalidated sub-lock would hang the join.
    for h in hs {
        h.join().unwrap();
    }

    assert_eq!(
        *m.lock(),
        threads * iters,
        "lost updates under forced flips"
    );

    // The forced policy must have actually flipped protocols, and the
    // instrumentation stream must agree with the lock's own counter and
    // chain correctly (each change starts where the previous ended).
    let evs = log.events();
    assert_eq!(evs.len() as u64, m.switches());
    assert!(
        evs.len() as u64 >= threads * iters / 50 / 4,
        "policy was consulted per acquisition; expected many forced flips, got {}",
        evs.len()
    );
    let mut expect_from = PROTO_TTS;
    let mut last_time = 0u64;
    for ev in &evs {
        assert_eq!(ev.from, expect_from, "switch chain broken");
        assert_ne!(ev.from, ev.to);
        assert!(ev.time >= last_time, "events out of commit order");
        expect_from = ev.to;
        last_time = ev.time;
    }
}

#[test]
fn forced_flips_then_quiescence_leaves_a_usable_lock() {
    let log = Arc::new(SwitchLog::new());
    let m = Arc::new(ReactiveMutex::with_lock(
        ReactiveLock::builder()
            .policy(ForcedFlip { period: 3, seen: 0 })
            .instrument(log.clone())
            .build(),
        0u64,
    ));
    let hs: Vec<_> = (0..4)
        .map(|_| {
            let m = m.clone();
            std::thread::spawn(move || {
                for _ in 0..2_000 {
                    *m.lock() += 1;
                }
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }
    // After the storm, the lock must still work single-threaded (the
    // consensus invariant survived every forced change).
    for _ in 0..1_000 {
        *m.lock() += 1;
    }
    assert_eq!(*m.lock(), 4 * 2_000 + 1_000);
    assert!(
        log.count() > 0,
        "period-3 forcing must switch at least once"
    );
}
