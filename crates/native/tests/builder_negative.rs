//! Negative-path tests for the host-hardware reactive builder: the
//! documented panic behaviour on misconfiguration mirrors the
//! simulator-side contract (`reactive-core`'s `builder_negative` suite),
//! so a policy or protocol-id mistake fails the same way in both worlds.

use std::sync::Arc;

use reactive_native::api::{Competitive3, Hysteresis, ProtocolId, SwitchLog};
use reactive_native::ReactiveLock;

#[test]
#[should_panic(expected = "not P5")]
fn builder_rejects_unknown_initial_protocol() {
    let _ = ReactiveLock::builder().initial_protocol(ProtocolId(5));
}

#[test]
#[should_panic(expected = "not P2")]
fn builder_rejects_sim_fetch_op_protocol_id() {
    // Protocol ids are per-object: the native lock has slots {0, 1}
    // even though the simulator's fetch-op object has a slot 2.
    let _ = ReactiveLock::builder().initial_protocol(ProtocolId(2));
}

#[test]
#[should_panic(expected = "round-trip cost must be positive")]
fn builder_rejects_nonpositive_competitive_threshold() {
    let _ = ReactiveLock::builder().policy(Competitive3::new(-1.0));
}

#[test]
#[should_panic(expected = "hysteresis thresholds must be positive")]
fn builder_rejects_zero_hysteresis() {
    let _ = ReactiveLock::builder().policy(Hysteresis::new(4, 0));
}

#[test]
fn valid_builder_configurations_still_build() {
    let log = Arc::new(SwitchLog::new());
    let lock = ReactiveLock::builder()
        .policy(Hysteresis::new(4, 4))
        .instrument(log.clone())
        .initial_protocol(reactive_native::reactive::PROTO_QUEUE)
        .build();
    let held = lock.acquire();
    lock.release(held);
    assert_eq!(
        log.count(),
        0,
        "uncontended acquire/release must not switch"
    );
}
