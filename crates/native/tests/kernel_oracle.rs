//! The §3.2 framework checkers against the *native* reactive lock: the
//! kernel's commit log from a real multi-threaded run must lower to a
//! legal change history in which at most one protocol is ever valid
//! (C-seriality holds by construction for point-interval commit logs;
//! the validity replay is the discriminating check) — the
//! same oracle the simulator-side objects are checked with
//! (`reactive-core/tests/kernel_oracle.rs`), closing the cross-world
//! loop.

use std::sync::Arc;

use reactive_api::oracle::check_switch_history;
use reactive_api::SwitchLog;
use reactive_native::reactive::PROTO_TTS;
use reactive_native::{ReactiveLock, ReactiveMutex};

#[test]
fn native_lock_history_is_single_valid() {
    let log = Arc::new(SwitchLog::new());
    let m = Arc::new(ReactiveMutex::with_lock(
        ReactiveLock::builder().instrument(log.clone()).build(),
        0u64,
    ));
    let threads = 8;
    let iters = 4_000;
    let hs: Vec<_> = (0..threads)
        .map(|_| {
            let m = m.clone();
            std::thread::spawn(move || {
                for _ in 0..iters {
                    *m.lock() += 1;
                }
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }
    // Solo phase pulls it back toward TTS, committing both directions
    // when the contended phase switched at all.
    for _ in 0..2_000 {
        *m.lock() += 1;
    }
    assert_eq!(*m.lock(), threads * iters + 2_000);
    let evs = log.events();
    assert_eq!(evs.len() as u64, m.switches());
    check_switch_history(&evs, 2, PROTO_TTS).expect("native lock history");
}

#[test]
fn forced_flip_history_stays_single_valid() {
    use reactive_api::{Decision, Observation, Policy};

    /// Propose the other protocol on every acquisition — maximal
    /// switch pressure on the kernel's event ordering.
    struct FlipFlop;
    impl Policy for FlipFlop {
        fn decide(&mut self, obs: &Observation) -> Decision {
            Decision::SwitchTo(reactive_api::ProtocolId(1 - obs.current.0))
        }
    }

    let log = Arc::new(SwitchLog::new());
    let m = Arc::new(ReactiveMutex::with_lock(
        ReactiveLock::builder()
            .policy(FlipFlop)
            .instrument(log.clone())
            .build(),
        0u64,
    ));
    let threads = 4;
    let iters = 2_000;
    let hs: Vec<_> = (0..threads)
        .map(|_| {
            let m = m.clone();
            std::thread::spawn(move || {
                for _ in 0..iters {
                    *m.lock() += 1;
                }
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }
    assert_eq!(*m.lock(), threads * iters);
    let evs = log.events();
    assert!(evs.len() >= 2, "FlipFlop must switch constantly");
    check_switch_history(&evs, 2, PROTO_TTS).expect("forced-flip history");
}
