//! Repo-invariant lint: textual/structural rules that `cargo check`
//! cannot express, enforced over the workspace's own sources (vendor
//! stubs and generated artifacts excluded).
//!
//! Rules:
//!
//! * `ordering` — every atomic memory-ordering use
//!   (`Ordering::Relaxed` … `Ordering::SeqCst`) carries an adjacent
//!   `// order:` justification (same line, or in the contiguous
//!   comment block immediately above), or its file is allowlisted.
//! * `unsafe` — every `unsafe` keyword carries an adjacent `SAFETY:`
//!   comment (same placement rule), or its file is allowlisted.
//! * `hot-path-maps` — the simulator's hot-path modules must stay on
//!   dense arena/slab structures: no `HashMap`/`BTreeMap`.
//! * `horizon-comments` — every cross-shard channel send/recv site in
//!   the parallel scheduler (`crates/sim/src/parallel.rs`) carries an
//!   adjacent `// horizon:` comment justifying why the transfer cannot
//!   violate the conservative safe-horizon invariant.
//! * `event-size` — the compile-time 16-byte bound on simulator events
//!   must stay present in `exec.rs`.
//! * `experiments-keys` — scenario keys in `EXPERIMENTS.md` tables and
//!   row names in `BENCH_experiments.json` must agree (md-only keys
//!   may be allowlisted: benches that write other artifacts).
//! * `rmr-keys` — the crash/abort scenario family: every row name in
//!   `BENCH_rmr.json` must be an `EXPERIMENTS.md` key, and every
//!   `rmr_*`/`storm_*` key in `EXPERIMENTS.md` must have a
//!   `BENCH_rmr.json` row (so the artifact the CI uploads cannot
//!   silently drop a gated scenario).
//! * `service-keys` — the lock-service scenario family, same contract
//!   against `BENCH_service.json`: every row name must be an
//!   `EXPERIMENTS.md` key, and every `service_*` key (except the
//!   `service_native_*` sub-family below) must have a
//!   `BENCH_service.json` row.
//! * `service-native-keys` — the native (real-thread) lock-service
//!   sub-family, same contract against `BENCH_service_native.json`:
//!   every row name must be an `EXPERIMENTS.md` key, and every
//!   `service_native_*` key must have a `BENCH_service_native.json`
//!   row.
//!
//! The allowlist is `crates/check/lint_allow.txt`: `<rule> <key>` per
//! line, `#` comments. Keys are workspace-relative paths for the file
//! rules, scenario keys for `experiments-keys`.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

// The patterns this file searches for are spelled split so the lint
// never matches its own source.
const ORDERING_PAT: &str = concat!("Order", "ing::");
const ORDER_COMMENT: &str = concat!("or", "der:");
const SAFETY_COMMENT: &str = concat!("SAF", "ETY:");
const UNSAFE_KW: &str = concat!("un", "safe");
const HASH_MAP: &str = concat!("Hash", "Map");
const BTREE_MAP: &str = concat!("BTree", "Map");
const HORIZON_COMMENT: &str = concat!("hori", "zon:");

/// Cross-shard channel transfer calls in the parallel scheduler; each
/// occurrence must justify the safe-horizon invariant.
const CHANNEL_OPS: [&str; 4] = [
    concat!(".try_", "send("),
    concat!(".try_", "recv("),
    concat!(".se", "nd("),
    concat!(".re", "cv("),
];

/// The one file the `horizon-comments` rule applies to.
const PARALLEL_FILE: &str = "crates/sim/src/parallel.rs";

/// Atomic-ordering variants (`std::cmp::Ordering`'s variants are not
/// in this list, so comparison code never trips the rule).
const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// The simulator modules the paper's throughput numbers depend on;
/// PR 2 moved them to dense structures and this rule keeps them there.
const HOT_PATH_FILES: [&str; 4] = [
    "crates/sim/src/queue.rs",
    "crates/sim/src/state.rs",
    "crates/sim/src/exec.rs",
    "crates/sim/src/coherence.rs",
];

/// One rule violation.
#[derive(Debug)]
pub struct Finding {
    /// Rule name (allowlist key space).
    pub rule: &'static str,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line (0 for whole-file findings).
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.file, self.rule, self.msg)
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file, self.line, self.rule, self.msg
            )
        }
    }
}

/// Parsed `lint_allow.txt`.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: BTreeSet<(String, String)>,
}

impl Allowlist {
    /// Parse allowlist text (`<rule> <key>` lines, `#` comments).
    pub fn parse(text: &str) -> Allowlist {
        let entries = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .filter_map(|l| {
                let (rule, key) = l.split_once(char::is_whitespace)?;
                Some((rule.to_string(), key.trim().to_string()))
            })
            .collect();
        Allowlist { entries }
    }

    fn allows(&self, rule: &str, key: &str) -> bool {
        self.entries.contains(&(rule.to_string(), key.to_string()))
    }
}

/// Run every rule over the workspace at `root`. Returns the surviving
/// findings (allowlisted ones are dropped).
pub fn run(root: &Path) -> io::Result<Vec<Finding>> {
    let allow = match fs::read_to_string(root.join("crates/check/lint_allow.txt")) {
        Ok(text) => Allowlist::parse(&text),
        Err(_) => Allowlist::default(),
    };
    let mut findings = Vec::new();
    for file in rust_sources(root)? {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let text = fs::read_to_string(&file)?;
        let lines: Vec<&str> = text.lines().collect();
        if !allow.allows("ordering", &rel) {
            ordering_rule(&rel, &lines, &mut findings);
        }
        if !allow.allows(UNSAFE_KW, &rel) {
            unsafe_rule(&rel, &lines, &mut findings);
        }
        if HOT_PATH_FILES.contains(&rel.as_str()) {
            hot_path_rule(&rel, &lines, &mut findings);
        }
        if rel == PARALLEL_FILE && !allow.allows("horizon-comments", &rel) {
            horizon_rule(&rel, &lines, &mut findings);
        }
        if rel == "crates/sim/src/exec.rs" {
            event_size_rule(&rel, &text, &mut findings);
        }
    }
    experiments_keys_rule(root, &allow, &mut findings)?;
    rmr_keys_rule(root, &allow, &mut findings)?;
    service_keys_rule(root, &allow, &mut findings)?;
    service_native_keys_rule(root, &allow, &mut findings)?;
    Ok(findings)
}

/// All workspace-owned `.rs` files (vendor stubs and build output are
/// not ours to lint).
fn rust_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().unwrap_or_default().to_string_lossy();
        if path.is_dir() {
            if name != "target" && name != "vendor" {
                walk(&path, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Whether the line is comment-only (`//`, `///`, `//!`).
fn is_comment_line(line: &str) -> bool {
    line.trim_start().starts_with("//")
}

/// Whether line `i` carries `needle` — on the line itself, on an
/// earlier line of the same (multi-line) statement, or in the
/// contiguous comment block immediately above the statement.
fn justified(lines: &[&str], i: usize, needle: &str) -> bool {
    if lines[i].contains(needle) {
        return true;
    }
    // Walk to the statement head: a predecessor that is blank, a
    // comment, or ends a statement/block means line `j` starts one.
    let mut j = i;
    while j > 0 {
        let prev = lines[j - 1].trim_end();
        if prev.is_empty()
            || is_comment_line(prev)
            || prev.ends_with(';')
            || prev.ends_with('{')
            || prev.ends_with('}')
        {
            break;
        }
        j -= 1;
        if lines[j].contains(needle) {
            return true;
        }
    }
    while j > 0 && is_comment_line(lines[j - 1]) {
        j -= 1;
        if lines[j].contains(needle) {
            return true;
        }
    }
    false
}

fn ordering_rule(file: &str, lines: &[&str], findings: &mut Vec<Finding>) {
    for (i, line) in lines.iter().enumerate() {
        if is_comment_line(line) {
            continue;
        }
        let hit = ATOMIC_ORDERINGS
            .iter()
            .any(|v| line.contains(&format!("{ORDERING_PAT}{v}")));
        if !hit {
            continue;
        }
        if !justified(lines, i, ORDER_COMMENT) {
            findings.push(Finding {
                rule: "ordering",
                file: file.to_string(),
                line: i + 1,
                msg: format!(
                    "atomic ordering without an adjacent `// {ORDER_COMMENT}` justification"
                ),
            });
        }
    }
}

fn unsafe_rule(file: &str, lines: &[&str], findings: &mut Vec<Finding>) {
    for (i, line) in lines.iter().enumerate() {
        if is_comment_line(line) || !has_word(line, UNSAFE_KW) {
            continue;
        }
        if !justified(lines, i, SAFETY_COMMENT) {
            findings.push(Finding {
                rule: UNSAFE_KW,
                file: file.to_string(),
                line: i + 1,
                msg: format!("`{UNSAFE_KW}` without an adjacent `// {SAFETY_COMMENT}` comment"),
            });
        }
    }
}

/// Word-boundary substring match (so `unsafe_code` in a lint attribute
/// never counts as the keyword).
fn has_word(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut from = 0;
    while let Some(pos) = line[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let ok_before = start == 0 || !is_word(bytes[start - 1]);
        let ok_after = end == bytes.len() || !is_word(bytes[end]);
        if ok_before && ok_after {
            return true;
        }
        from = end;
    }
    false
}

fn hot_path_rule(file: &str, lines: &[&str], findings: &mut Vec<Finding>) {
    for (i, line) in lines.iter().enumerate() {
        if is_comment_line(line) {
            continue;
        }
        for map in [HASH_MAP, BTREE_MAP] {
            if has_word(line, map) {
                findings.push(Finding {
                    rule: "hot-path-maps",
                    file: file.to_string(),
                    line: i + 1,
                    msg: format!("`{map}` on the simulator hot path (use a dense arena/slab)"),
                });
            }
        }
    }
}

fn horizon_rule(file: &str, lines: &[&str], findings: &mut Vec<Finding>) {
    for (i, line) in lines.iter().enumerate() {
        if is_comment_line(line) {
            continue;
        }
        if !CHANNEL_OPS.iter().any(|op| line.contains(op)) {
            continue;
        }
        if !justified(lines, i, HORIZON_COMMENT) {
            findings.push(Finding {
                rule: "horizon-comments",
                file: file.to_string(),
                line: i + 1,
                msg: format!(
                    "cross-shard channel transfer without an adjacent `// {HORIZON_COMMENT}` \
                     justification of the safe-horizon invariant"
                ),
            });
        }
    }
}

fn event_size_rule(file: &str, text: &str, findings: &mut Vec<Finding>) {
    if !text.contains("size_of::<Ev>() <= 16") {
        findings.push(Finding {
            rule: "event-size",
            file: file.to_string(),
            line: 0,
            msg: "compile-time `size_of::<Ev>() <= 16` assert is missing".to_string(),
        });
    }
}

/// Scenario keys from `EXPERIMENTS.md` tables: the first backticked
/// cell of each table row (`| \`key\` | ...`).
fn experiment_md_keys(text: &str) -> BTreeSet<String> {
    let mut keys = BTreeSet::new();
    for line in text.lines() {
        let Some(rest) = line.trim_start().strip_prefix("| `") else {
            continue;
        };
        if let Some((key, _)) = rest.split_once('`') {
            if !key.is_empty() {
                keys.insert(key.to_string());
            }
        }
    }
    keys
}

/// `"name": "<key>"` values from `BENCH_experiments.json` (hand parse:
/// the workspace has no JSON dependency, and the format is ours).
fn experiment_json_keys(text: &str) -> BTreeSet<String> {
    let mut keys = BTreeSet::new();
    let mut rest = text;
    while let Some(pos) = rest.find("\"name\"") {
        rest = &rest[pos + "\"name\"".len()..];
        let Some(colon) = rest.find(':') else { break };
        let tail = rest[colon + 1..].trim_start();
        if let Some(val) = tail.strip_prefix('"') {
            if let Some((key, _)) = val.split_once('"') {
                keys.insert(key.to_string());
            }
        }
    }
    keys
}

fn experiments_keys_rule(
    root: &Path,
    allow: &Allowlist,
    findings: &mut Vec<Finding>,
) -> io::Result<()> {
    let md = fs::read_to_string(root.join("EXPERIMENTS.md"))?;
    let json = fs::read_to_string(root.join("BENCH_experiments.json"))?;
    let md_keys = experiment_md_keys(&md);
    let json_keys = experiment_json_keys(&json);
    for key in &json_keys {
        if !md_keys.contains(key) {
            findings.push(Finding {
                rule: "experiments-keys",
                file: "EXPERIMENTS.md".to_string(),
                line: 0,
                msg: format!("BENCH_experiments.json row `{key}` has no EXPERIMENTS.md table row"),
            });
        }
    }
    for key in &md_keys {
        if !json_keys.contains(key) && !allow.allows("experiments-keys", key) {
            findings.push(Finding {
                rule: "experiments-keys",
                file: "BENCH_experiments.json".to_string(),
                line: 0,
                msg: format!(
                    "EXPERIMENTS.md scenario `{key}` has no BENCH_experiments.json row \
                     (allowlist it if another artifact carries it)"
                ),
            });
        }
    }
    Ok(())
}

/// Key prefixes that mark an `EXPERIMENTS.md` row as belonging to the
/// crash/abort scenario family (`BENCH_rmr.json`'s scope).
const RMR_FAMILY_PREFIXES: [&str; 2] = ["rmr_", "storm_"];

fn rmr_keys_rule(root: &Path, allow: &Allowlist, findings: &mut Vec<Finding>) -> io::Result<()> {
    let md = fs::read_to_string(root.join("EXPERIMENTS.md"))?;
    let json = fs::read_to_string(root.join("BENCH_rmr.json"))?;
    let md_keys = experiment_md_keys(&md);
    let json_keys = experiment_json_keys(&json);
    for key in &json_keys {
        if !md_keys.contains(key) {
            findings.push(Finding {
                rule: "rmr-keys",
                file: "EXPERIMENTS.md".to_string(),
                line: 0,
                msg: format!("BENCH_rmr.json row `{key}` has no EXPERIMENTS.md table row"),
            });
        }
    }
    for key in &md_keys {
        let in_family = RMR_FAMILY_PREFIXES.iter().any(|p| key.starts_with(p));
        if in_family && !json_keys.contains(key) && !allow.allows("rmr-keys", key) {
            findings.push(Finding {
                rule: "rmr-keys",
                file: "BENCH_rmr.json".to_string(),
                line: 0,
                msg: format!(
                    "EXPERIMENTS.md crash/abort scenario `{key}` has no BENCH_rmr.json row \
                     (add it to the rmr bench's ROWS, or allowlist it)"
                ),
            });
        }
    }
    Ok(())
}

/// Key prefixes that mark an `EXPERIMENTS.md` row as belonging to the
/// lock-service scenario family (`BENCH_service.json`'s scope). The
/// native sub-family is carved out: its rows live in
/// `BENCH_service_native.json` (see `SERVICE_NATIVE_FAMILY_PREFIXES`).
const SERVICE_FAMILY_PREFIXES: [&str; 1] = ["service_"];

/// Key prefixes of the native (real-thread) lock-service sub-family
/// (`BENCH_service_native.json`'s scope).
const SERVICE_NATIVE_FAMILY_PREFIXES: [&str; 1] = ["service_native_"];

fn service_keys_rule(
    root: &Path,
    allow: &Allowlist,
    findings: &mut Vec<Finding>,
) -> io::Result<()> {
    let md = fs::read_to_string(root.join("EXPERIMENTS.md"))?;
    let json = fs::read_to_string(root.join("BENCH_service.json"))?;
    let md_keys = experiment_md_keys(&md);
    let json_keys = experiment_json_keys(&json);
    for key in &json_keys {
        if !md_keys.contains(key) {
            findings.push(Finding {
                rule: "service-keys",
                file: "EXPERIMENTS.md".to_string(),
                line: 0,
                msg: format!("BENCH_service.json row `{key}` has no EXPERIMENTS.md table row"),
            });
        }
    }
    for key in &md_keys {
        let in_family = SERVICE_FAMILY_PREFIXES.iter().any(|p| key.starts_with(p))
            && !SERVICE_NATIVE_FAMILY_PREFIXES
                .iter()
                .any(|p| key.starts_with(p));
        if in_family && !json_keys.contains(key) && !allow.allows("service-keys", key) {
            findings.push(Finding {
                rule: "service-keys",
                file: "BENCH_service.json".to_string(),
                line: 0,
                msg: format!(
                    "EXPERIMENTS.md lock-service scenario `{key}` has no BENCH_service.json \
                     row (add it to the service bench's ROWS, or allowlist it)"
                ),
            });
        }
    }
    Ok(())
}

fn service_native_keys_rule(
    root: &Path,
    allow: &Allowlist,
    findings: &mut Vec<Finding>,
) -> io::Result<()> {
    let md = fs::read_to_string(root.join("EXPERIMENTS.md"))?;
    let json = fs::read_to_string(root.join("BENCH_service_native.json"))?;
    let md_keys = experiment_md_keys(&md);
    let json_keys = experiment_json_keys(&json);
    for key in &json_keys {
        if !md_keys.contains(key) {
            findings.push(Finding {
                rule: "service-native-keys",
                file: "EXPERIMENTS.md".to_string(),
                line: 0,
                msg: format!(
                    "BENCH_service_native.json row `{key}` has no EXPERIMENTS.md table row"
                ),
            });
        }
    }
    for key in &md_keys {
        let in_family = SERVICE_NATIVE_FAMILY_PREFIXES
            .iter()
            .any(|p| key.starts_with(p));
        if in_family && !json_keys.contains(key) && !allow.allows("service-native-keys", key) {
            findings.push(Finding {
                rule: "service-native-keys",
                file: "BENCH_service_native.json".to_string(),
                line: 0,
                msg: format!(
                    "EXPERIMENTS.md native lock-service scenario `{key}` has no \
                     BENCH_service_native.json row (add it to the service_native bench's \
                     ROWS, or allowlist it)"
                ),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Synthetic sources are built from the split constants so the lint
    // never flags its own test fixtures.
    #[test]
    fn ordering_requires_adjacent_justification() {
        let load = format!("x.load({ORDERING_PAT}Relaxed);");
        let comment = format!("// {ORDER_COMMENT} Relaxed — diagnostic.");
        let ok = [comment.as_str(), load.as_str()];
        let bad = [load.as_str()];
        let far = [comment.as_str(), "", "", load.as_str()];
        let mut f = Vec::new();
        ordering_rule("a.rs", &ok, &mut f);
        assert!(f.is_empty(), "{f:?}");
        ordering_rule("a.rs", &bad, &mut f);
        assert_eq!(f.len(), 1);
        f.clear();
        ordering_rule("a.rs", &far, &mut f);
        assert_eq!(f.len(), 1, "a blank line breaks the comment block");
    }

    #[test]
    fn cmp_ordering_is_not_an_atomic_ordering() {
        let cmp = format!("std::cmp::{ORDERING_PAT}Less => {{}}");
        let lines = [cmp.as_str()];
        let mut f = Vec::new();
        ordering_rule("a.rs", &lines, &mut f);
        assert!(
            f.is_empty(),
            "comparison Ordering variants tripped the rule"
        );
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let safety = format!("// {SAFETY_COMMENT} we hold the lock.");
        let block = format!("{UNSAFE_KW} {{ *p }}");
        let attr = format!("#![deny({UNSAFE_KW}_op_in_{UNSAFE_KW}_fn)]");
        let mut f = Vec::new();
        unsafe_rule("a.rs", &[safety.as_str(), block.as_str()], &mut f);
        assert!(f.is_empty(), "{f:?}");
        unsafe_rule("a.rs", &[block.as_str()], &mut f);
        assert_eq!(f.len(), 1);
        f.clear();
        unsafe_rule("a.rs", &[attr.as_str()], &mut f);
        assert!(f.is_empty(), "lint attributes are not the keyword");
    }

    #[test]
    fn hot_path_rule_flags_maps_outside_comments() {
        let map = concat!("Hash", "Map");
        let lines = [
            format!("use std::collections::{map};"),
            format!("// a comment may mention {map}"),
        ];
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let mut f = Vec::new();
        hot_path_rule("crates/sim/src/state.rs", &refs, &mut f);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn horizon_rule_requires_adjacent_justification() {
        let send = format!("tx{}msg){};", CHANNEL_OPS[0], ".unwrap()");
        let recv = format!("while let Ok(m) = rx{}) {{", CHANNEL_OPS[1]);
        let comment = format!("// {HORIZON_COMMENT} drained only at the epoch barrier.");
        let mut f = Vec::new();
        horizon_rule(PARALLEL_FILE, &[comment.as_str(), send.as_str()], &mut f);
        assert!(f.is_empty(), "{f:?}");
        horizon_rule(PARALLEL_FILE, &[send.as_str(), recv.as_str()], &mut f);
        assert_eq!(f.len(), 2, "both unjustified transfer sites flagged");
        assert_eq!((f[0].line, f[1].line), (1, 2));
        f.clear();
        // A multi-line statement reaches back to the block above its head.
        let head = "match txs[dst]";
        let tail = format!("    .as_ref().unwrap(){}", &send);
        horizon_rule(
            PARALLEL_FILE,
            &[comment.as_str(), head, tail.as_str()],
            &mut f,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn experiment_key_parsers() {
        let md = "| `fig_1` | Fig. 1 | x | y | ✓ |\nplain text\n| `tbl_2` | ... |\n";
        assert_eq!(
            experiment_md_keys(md).into_iter().collect::<Vec<_>>(),
            vec!["fig_1".to_string(), "tbl_2".to_string()]
        );
        let json = r#"{"rows": [{"name": "fig_1"}, {"name": "tbl_2"}]}"#;
        assert_eq!(
            experiment_json_keys(json).into_iter().collect::<Vec<_>>(),
            vec!["fig_1".to_string(), "tbl_2".to_string()]
        );
    }

    #[test]
    fn rmr_family_prefixes_scope_the_rule() {
        // Only `rmr_*`/`storm_*` EXPERIMENTS.md keys are required to
        // have a BENCH_rmr.json row; everything else is out of scope.
        let family = |k: &str| RMR_FAMILY_PREFIXES.iter().any(|p| k.starts_with(p));
        assert!(family("rmr_recoverable"));
        assert!(family("storm_robustness"));
        assert!(!family("fig_3_15_baseline"));
        assert!(!family("switch_cost"));
        assert!(!family("service_tail_latency"));
    }

    #[test]
    fn service_family_prefixes_scope_the_rule() {
        // Only `service_*` EXPERIMENTS.md keys are required to have a
        // BENCH_service.json row; everything else is out of scope —
        // including the `service_native_*` sub-family, which the
        // service-native-keys rule owns.
        let family = |k: &str| {
            SERVICE_FAMILY_PREFIXES.iter().any(|p| k.starts_with(p))
                && !SERVICE_NATIVE_FAMILY_PREFIXES
                    .iter()
                    .any(|p| k.starts_with(p))
        };
        assert!(family("service_tail_latency"));
        assert!(family("service_stampede"));
        assert!(!family("service_native_tail"));
        assert!(!family("service_native_deflation"));
        assert!(!family("rmr_recoverable"));
        assert!(!family("fig_3_15_baseline"));
    }

    #[test]
    fn service_native_family_prefixes_scope_the_rule() {
        // Only `service_native_*` EXPERIMENTS.md keys are required to
        // have a BENCH_service_native.json row.
        let family = |k: &str| {
            SERVICE_NATIVE_FAMILY_PREFIXES
                .iter()
                .any(|p| k.starts_with(p))
        };
        assert!(family("service_native_tail"));
        assert!(family("service_native_deflation"));
        assert!(!family("service_tail_latency"));
        assert!(!family("rmr_recoverable"));
    }

    #[test]
    fn allowlist_parses_and_filters() {
        let a = Allowlist::parse("# comment\nordering crates/x.rs\nexperiments-keys switch_cost\n");
        assert!(a.allows("ordering", "crates/x.rs"));
        assert!(a.allows("experiments-keys", "switch_cost"));
        assert!(!a.allows(UNSAFE_KW, "crates/x.rs"));
    }
}
