//! `conc-check` — run the repo's lock/kernel scenarios under the
//! bounded interleaving model checker.
//!
//! ```sh
//! cargo run --release -p check --bin conc-check -- --quick
//! cargo run --release -p check --bin conc-check -- --list
//! cargo run --release -p check --bin conc-check -- --only reactive_lock
//! ```
//!
//! Mutant rediscovery (CI's regression gate) rebuilds with the seeded
//! races compiled in and expects the matching scenario to fail:
//!
//! ```sh
//! RUSTFLAGS="--cfg conc_check_mutant" CARGO_TARGET_DIR=target/mutant \
//!   CONC_CHECK_MUTANT=double_commit \
//!   cargo run --release -p check --bin conc-check -- \
//!   --quick --expect-race kernel_arbitration
//! ```
//!
//! Counterexamples (replayable schedules) are printed and written to
//! `--out` (default `target/conc-check/`) for artifact upload.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use check::scenarios::{self, Scenario};
use reactive_native::model::Config;

struct Opts {
    quick: bool,
    preemptions: Option<u8>,
    only: Vec<String>,
    expect_race: Option<String>,
    out: PathBuf,
    list: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: conc-check [--quick] [--preemptions N] [--only NAME]... \
         [--expect-race NAME] [--out DIR] [--list]"
    );
    std::process::exit(2);
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        quick: false,
        preemptions: None,
        only: Vec::new(),
        expect_race: None,
        out: PathBuf::from("target/conc-check"),
        list: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--list" => opts.list = true,
            "--preemptions" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.preemptions = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--only" => opts.only.push(args.next().unwrap_or_else(|| usage())),
            "--expect-race" => opts.expect_race = Some(args.next().unwrap_or_else(|| usage())),
            "--out" => opts.out = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    opts
}

fn config(opts: &Opts) -> Config {
    let mut cfg = if opts.quick {
        // The CI budget: every scenario within the 2-preemption bound
        // (both seeded races are rediscovered at 2).
        Config {
            preemptions: 2,
            max_schedules: 300_000,
            max_steps: 20_000,
        }
    } else {
        Config {
            preemptions: 3,
            max_schedules: 5_000_000,
            max_steps: 50_000,
        }
    };
    if let Some(p) = opts.preemptions {
        cfg.preemptions = p;
    }
    cfg
}

fn main() -> ExitCode {
    let opts = parse_args();
    if opts.list {
        for s in scenarios::all() {
            println!("{:20} {}", s.name, s.about);
        }
        return ExitCode::SUCCESS;
    }
    let cfg = config(&opts);
    if cfg!(conc_check_mutant) {
        let sel = std::env::var("CONC_CHECK_MUTANT").unwrap_or_default();
        println!(
            "mutant build (--cfg conc_check_mutant); CONC_CHECK_MUTANT={}",
            if sel.is_empty() { "<unset>" } else { &sel }
        );
    }
    println!(
        "bound: {} preemptions, ≤{} schedules, ≤{} steps/run",
        cfg.preemptions, cfg.max_schedules, cfg.max_steps
    );

    if let Some(name) = &opts.expect_race {
        return expect_race(name, cfg, &opts);
    }

    let selected: Vec<Scenario> = scenarios::all()
        .into_iter()
        .filter(|s| opts.only.is_empty() || opts.only.iter().any(|o| o == s.name))
        .collect();
    if selected.is_empty() {
        eprintln!("no scenario matches {:?}", opts.only);
        return ExitCode::from(2);
    }
    let mut failed = 0usize;
    for s in selected {
        let t0 = Instant::now();
        let report = (s.run)(cfg);
        let dt = t0.elapsed();
        match &report.failure {
            None => {
                let note = if report.truncated {
                    " [truncated at schedule cap]"
                } else {
                    ""
                };
                println!(
                    "PASS {:20} {:>9} schedules {:>10} decisions  {:>6.2?}{note}",
                    s.name, report.schedules, report.steps, dt
                );
            }
            Some(f) => {
                failed += 1;
                println!(
                    "FAIL {:20} after {} schedules  {:>6.2?}",
                    s.name, report.schedules, dt
                );
                println!("{}", f.render());
                write_counterexample(&opts.out, s.name, &f.render());
            }
        }
    }
    if failed > 0 {
        eprintln!("conc-check: {failed} scenario(s) failed");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Mutant mode: the named scenario MUST fail (the checker rediscovers
/// the seeded race); exit nonzero if it passes.
fn expect_race(name: &str, cfg: Config, opts: &Opts) -> ExitCode {
    let Some(s) = scenarios::by_name(name) else {
        eprintln!("unknown scenario `{name}`");
        return ExitCode::from(2);
    };
    let t0 = Instant::now();
    let report = (s.run)(cfg);
    let dt = t0.elapsed();
    match &report.failure {
        Some(f) => {
            println!(
                "REDISCOVERED {:20} after {} schedules  {:>6.2?}",
                s.name, report.schedules, dt
            );
            println!("{}", f.render());
            write_counterexample(&opts.out, s.name, &f.render());
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "conc-check: expected scenario `{name}` to fail under the seeded mutant, \
                 but it passed ({} schedules{})",
                report.schedules,
                if report.truncated {
                    ", truncated — raise the schedule cap"
                } else {
                    ""
                }
            );
            ExitCode::FAILURE
        }
    }
}

fn write_counterexample(out: &std::path::Path, name: &str, rendered: &str) {
    if std::fs::create_dir_all(out).is_ok() {
        let path = out.join(format!("{name}.counterexample.txt"));
        if std::fs::write(&path, rendered).is_ok() {
            println!("counterexample schedule written to {}", path.display());
        }
    }
}
