//! `lint` — the repo-invariant lint pass (see `check::lint` for the
//! rules). Scans the workspace rooted at `--root` (default: the
//! nearest ancestor of the current directory containing
//! `EXPERIMENTS.md`, so `cargo run -p check --bin lint` works from
//! anywhere inside the repo).

use std::path::PathBuf;
use std::process::ExitCode;

fn find_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start.as_path();
    loop {
        if dir.join("EXPERIMENTS.md").is_file() {
            return Some(dir.to_path_buf());
        }
        dir = dir.parent()?;
    }
}

fn main() -> ExitCode {
    let mut root = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            _ => {
                eprintln!("usage: lint [--root DIR]");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.or_else(|| {
        let cwd = std::env::current_dir().ok()?;
        find_root(cwd)
    });
    let Some(root) = root else {
        eprintln!("lint: workspace root not found (run inside the repo or pass --root)");
        return ExitCode::from(2);
    };
    match check::lint::run(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("lint: io error: {e}");
            ExitCode::from(2)
        }
    }
}
