//! The model-checked scenarios: each wraps one of the repo's native
//! synchronization algorithms (or the switching kernel itself) in a
//! small closed program whose every interleaving the checker explores.
//!
//! A scenario must build all shared state *inside* its closure (a
//! fresh world per schedule) and fail by panicking — an assertion, a
//! protocol invariant (e.g. `TtsLock`'s unheld-unlock assert), or the
//! model's own vector-clock race detector via
//! [`reactive_native::model::RaceCell`].
//!
//! Three scenarios exist to rediscover the seeded regression mutants
//! (`kernel_arbitration` for `double_commit`, `kernel_commit_first`
//! for `stale_mode`, `kernel_recovery` for `drop_recovery_fence`); on
//! an unmutated build they must pass like the rest.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use reactive_api::{
    drive, CrashPoint, Decision, Observation, Policy, ProtocolId, SharedWorld, SwitchKernel,
    SwitchStyle, SwitchableObject,
};
use reactive_native::mcs::{McsLock, McsNode};
use reactive_native::model::shim::{AtomicU64, AtomicU8};
use reactive_native::model::{explore, thread, Config, RaceCell, Report};
use reactive_native::reactive::{ReactiveLock, PROTO_QUEUE, PROTO_TTS};
use reactive_native::{Event, TtsLock, TwoPhaseWait};

/// One model-checked scenario.
pub struct Scenario {
    /// Stable name (CLI selector and counterexample file stem).
    pub name: &'static str,
    /// One-line description for `conc-check --list`.
    pub about: &'static str,
    /// Runs the scenario under the given exploration limits.
    pub run: fn(Config) -> Report,
}

/// Every scenario, in documentation order.
pub fn all() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "tts_mutex",
            about: "test-and-test&set lock provides mutual exclusion (3 threads)",
            run: tts_mutex,
        },
        Scenario {
            name: "mcs_mutex",
            about: "MCS queue lock provides mutual exclusion + FIFO handoff (3 threads)",
            run: mcs_mutex,
        },
        Scenario {
            name: "two_phase_event",
            about: "two-phase (poll-then-park) event wait never loses a waiter or a write",
            run: two_phase_event,
        },
        Scenario {
            name: "reactive_lock",
            about: "kernel-driven reactive lock under a thrashing policy (switch on every release)",
            run: reactive_lock,
        },
        Scenario {
            name: "kernel_arbitration",
            about: "concurrent Transfer-style changers arbitrate to exactly one commit",
            run: kernel_arbitration,
        },
        Scenario {
            name: "kernel_commit_first",
            about: "CommitFirst bookkeeping is settled before a racer can win the target",
            run: kernel_commit_first,
        },
        Scenario {
            name: "kernel_abort_switch",
            about: "an abort racing a mode switch resolves to exactly one of {aborted, migrated}",
            run: kernel_abort_switch,
        },
        Scenario {
            name: "kernel_recovery",
            about: "crash-recovery racing a fresh acquirer fences the dead protocol first",
            run: kernel_recovery,
        },
        Scenario {
            name: "arena_inflation",
            about: "slot-word inflate -> deflate -> re-inflate keeps mutual exclusion (2 threads)",
            run: arena_inflation,
        },
    ]
}

/// Look up a scenario by name.
pub fn by_name(name: &str) -> Option<Scenario> {
    all().into_iter().find(|s| s.name == name)
}

// ---------------------------------------------------------------------
// Protocol scenarios
// ---------------------------------------------------------------------

fn tts_mutex(cfg: Config) -> Report {
    explore(
        "tts_mutex",
        cfg,
        Arc::new(|| {
            let l = Arc::new(TtsLock::new());
            let c = Arc::new(RaceCell::new("tts payload", 0u64));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let (l, c) = (l.clone(), c.clone());
                    thread::spawn(move || {
                        l.lock();
                        let v = c.get();
                        c.set(v + 1);
                        l.unlock();
                    })
                })
                .collect();
            l.lock();
            let v = c.get();
            c.set(v + 1);
            l.unlock();
            for h in hs {
                h.join().unwrap();
            }
            l.lock();
            assert_eq!(c.get(), 3, "an increment was lost");
            l.unlock();
        }),
    )
}

fn mcs_mutex(cfg: Config) -> Report {
    explore(
        "mcs_mutex",
        cfg,
        Arc::new(|| {
            let l = Arc::new(McsLock::new());
            let c = Arc::new(RaceCell::new("mcs payload", 0u64));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let (l, c) = (l.clone(), c.clone());
                    thread::spawn(move || {
                        let node = Box::new(McsNode::new());
                        l.lock(&node);
                        let v = c.get();
                        c.set(v + 1);
                        l.unlock(&node);
                    })
                })
                .collect();
            let node = Box::new(McsNode::new());
            l.lock(&node);
            let v = c.get();
            c.set(v + 1);
            l.unlock(&node);
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(c.get(), 3, "an increment was lost");
        }),
    )
}

fn two_phase_event(cfg: Config) -> Report {
    explore(
        "two_phase_event",
        cfg,
        Arc::new(|| {
            let ev = Arc::new(Event::new());
            let data = Arc::new(RaceCell::new("event payload", 0u64));
            // One waiter polls briefly (virtual nanoseconds = granted
            // ops) and then parks; the other parks immediately. Both
            // must observe the pre-`set` write.
            let hs: Vec<_> = [Duration::from_nanos(3), Duration::ZERO]
                .into_iter()
                .map(|lpoll| {
                    let (ev, data) = (ev.clone(), data.clone());
                    thread::spawn(move || {
                        ev.wait(TwoPhaseWait::new(lpoll));
                        assert_eq!(data.get(), 7, "waiter woke before the producer's write");
                    })
                })
                .collect();
            data.set(7);
            ev.set();
            for h in hs {
                h.join().unwrap();
            }
        }),
    )
}

/// A policy that asks to leave the current protocol on every
/// observation — the adversarial maximum of mode-change traffic, so
/// every release runs a full kernel transaction.
struct Thrash;

impl Policy for Thrash {
    fn decide(&mut self, obs: &Observation) -> Decision {
        Decision::SwitchTo(if obs.current == PROTO_TTS {
            PROTO_QUEUE
        } else {
            PROTO_TTS
        })
    }
}

fn reactive_lock(cfg: Config) -> Report {
    explore(
        "reactive_lock",
        cfg,
        Arc::new(|| {
            let l = Arc::new(ReactiveLock::builder().policy(Thrash).build());
            let c = Arc::new(RaceCell::new("reactive payload", 0u64));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let (l, c) = (l.clone(), c.clone());
                    thread::spawn(move || {
                        let held = l.acquire();
                        let v = c.get();
                        c.set(v + 1);
                        l.release(held);
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(c.get(), 2, "an increment was lost across mode changes");
        }),
    )
}

// ---------------------------------------------------------------------
// Kernel scenarios (regression-mutant rediscovery targets)
// ---------------------------------------------------------------------

const MP: ProtocolId = ProtocolId(0);
const SM: ProtocolId = ProtocolId(1);

/// Miniature of the message-passing fetch-op's switch machinery: the
/// exiting protocol's consensus object is a manager validity word
/// (invalidation = winning a compare-exchange on it), the entering
/// protocol's is a TTS flag pinned busy until `validate` frees it.
struct MpFetchOp {
    kernel: SwitchKernel<SharedWorld>,
    /// Manager's validity word for the MP protocol (1 = valid).
    mp_valid: AtomicU64,
    /// The SM side's consensus lock, pinned busy while invalid.
    sm: TtsLock,
    mode: AtomicU8,
}

impl MpFetchOp {
    fn new() -> MpFetchOp {
        let obj = MpFetchOp {
            kernel: SwitchKernel::<SharedWorld>::builder()
                .register(MP, "mp", SwitchStyle::Transfer)
                .register(SM, "sm", SwitchStyle::Handoff)
                .build(),
            mp_valid: AtomicU64::new(1),
            sm: TtsLock::new(),
            mode: AtomicU8::new(MP.0),
        };
        let pinned = obj.sm.try_lock();
        assert!(pinned, "fresh SM consensus lock must be free to pin");
        obj
    }
}

impl SwitchableObject for MpFetchOp {
    type Ctx = ();

    async fn validate(&self, _ctx: &(), to: ProtocolId, _from: ProtocolId, _state: u64) {
        if to == SM {
            // Exactly like the real fetch-op: making SM valid frees its
            // pinned consensus lock. Freeing it twice is the
            // double-commit signature (TtsLock's unheld-unlock assert).
            self.sm.unlock();
        }
    }

    async fn invalidate(&self, _ctx: &(), from: ProtocolId, _to: ProtocolId) -> Option<u64> {
        if from == MP {
            // The manager's conditional invalidation: the validity word
            // is the consensus object, so concurrent changers arbitrate
            // here — exactly one wins the 1 -> 0 transition.
            // order: AcqRel — the winner's later reads see the state the
            // word guarded; losers only need the failure itself.
            self.mp_valid
                .compare_exchange(1, 0, Ordering::AcqRel, Ordering::Acquire)
                .ok()
                .map(|_| 0)
        } else {
            Some(0)
        }
    }

    async fn publish_mode(&self, _ctx: &(), to: ProtocolId) {
        // order: Release — the hint must not be reordered before the
        // validity transitions above.
        self.mode.store(to.0, Ordering::Release);
    }

    fn now(&self, _ctx: &()) -> u64 {
        0
    }
}

fn kernel_arbitration(cfg: Config) -> Report {
    explore(
        "kernel_arbitration",
        cfg,
        Arc::new(|| {
            // Two completed requesters both hold an approved decision to
            // leave MP for SM (the §3.6 double-commit shape) and race
            // their transactions. Exactly one may commit; the other
            // must abort at the consensus object with no side effects.
            let obj = Arc::new(MpFetchOp::new());
            let wins = Arc::new(AtomicU64::new(0));
            let (o2, w2) = (obj.clone(), wins.clone());
            let h = thread::spawn(move || {
                if drive(o2.kernel.try_switch(&*o2, &(), MP, SM)) {
                    // order: Relaxed — joined before reading.
                    w2.fetch_add(1, Ordering::Relaxed);
                }
            });
            if drive(obj.kernel.try_switch(&*obj, &(), MP, SM)) {
                // order: Relaxed — joined before reading.
                wins.fetch_add(1, Ordering::Relaxed);
            }
            h.join().unwrap();
            // order: Relaxed — the join above orders both increments.
            assert_eq!(
                wins.load(Ordering::Relaxed),
                1,
                "exactly one concurrent changer may commit"
            );
            assert!(
                obj.sm.try_lock(),
                "SM consensus lock freed exactly once by the winning validate"
            );
            assert_eq!(obj.kernel.switches(), 1);
        }),
    )
}

/// Miniature of the native lock's CommitFirst discipline: `validate`
/// makes the target's consensus object winnable; the scenario's second
/// thread pounces on it the instant it lands and runs a full opposite
/// transaction, which is only sound if this transaction's kernel
/// bookkeeping is already settled.
struct CommitFirstObj {
    kernel: SwitchKernel<SharedWorld>,
    /// Target consensus object: 1 = winnable by a racer.
    b_valid: AtomicU64,
    mode: AtomicU8,
}

const A: ProtocolId = ProtocolId(0);
const B: ProtocolId = ProtocolId(1);

impl CommitFirstObj {
    fn new() -> CommitFirstObj {
        CommitFirstObj {
            kernel: SwitchKernel::<SharedWorld>::builder()
                .register(A, "a", SwitchStyle::CommitFirst)
                .register(B, "b", SwitchStyle::CommitFirst)
                .build(),
            b_valid: AtomicU64::new(0),
            mode: AtomicU8::new(A.0),
        }
    }
}

impl SwitchableObject for CommitFirstObj {
    type Ctx = ();

    async fn validate(&self, _ctx: &(), to: ProtocolId, _from: ProtocolId, _state: u64) {
        if to == B {
            // order: Release pairs with the racer's Acquire spin — a
            // winner of the freshly valid consensus object must also
            // see the kernel bookkeeping committed before this store.
            self.b_valid.store(1, Ordering::Release);
        }
    }

    async fn invalidate(&self, _ctx: &(), from: ProtocolId, _to: ProtocolId) -> Option<u64> {
        if from == B {
            // order: Relaxed — serialized by holding the consensus
            // object (the racer owns B when it invalidates it).
            self.b_valid.store(0, Ordering::Relaxed);
        }
        Some(0)
    }

    async fn publish_mode(&self, _ctx: &(), to: ProtocolId) {
        // order: Release — hint only; must trail the validity stores.
        self.mode.store(to.0, Ordering::Release);
    }

    fn now(&self, _ctx: &()) -> u64 {
        0
    }
}

// ---------------------------------------------------------------------
// Crash/abort scenarios (fault-injection companions)
// ---------------------------------------------------------------------

/// Qnode status protocol of the abortable lock, miniaturized: a single
/// parked waiter whose word arbitrates between its own deadline abort
/// and the mode switch's bounce.
const ST_WAITING: u64 = 0;
const ST_ABORTED: u64 = 1;
const ST_INVALID: u64 = 2;

/// Miniature of the robust lock's Handoff change racing a waiter's
/// abort: the exiting protocol's invalidation bounces parked waiters
/// with a conditional `WAITING -> INVALID` transition, and the waiter's
/// deadline abort is a conditional `WAITING -> ABORTED` transition on
/// the same word — the consensus that makes the two outcomes exclusive.
struct AbortSwitchObj {
    kernel: SwitchKernel<SharedWorld>,
    /// The parked waiter's status word.
    status: AtomicU64,
    /// The entering protocol's sub-lock.
    b: TtsLock,
    /// The entering protocol's validity word.
    b_valid: AtomicU64,
    mode: AtomicU8,
}

impl AbortSwitchObj {
    fn new() -> AbortSwitchObj {
        AbortSwitchObj {
            kernel: SwitchKernel::<SharedWorld>::builder()
                .register(A, "a", SwitchStyle::Handoff)
                .register(B, "b", SwitchStyle::Handoff)
                .build(),
            status: AtomicU64::new(ST_WAITING),
            b: TtsLock::new(),
            b_valid: AtomicU64::new(0),
            mode: AtomicU8::new(A.0),
        }
    }
}

impl SwitchableObject for AbortSwitchObj {
    type Ctx = ();

    async fn validate(&self, _ctx: &(), to: ProtocolId, _from: ProtocolId, _state: u64) {
        if to == B {
            // order: Release pairs with the bounced waiter's Acquire
            // spin before it re-enters through B.
            self.b_valid.store(1, Ordering::Release);
        }
    }

    async fn invalidate(&self, _ctx: &(), from: ProtocolId, _to: ProtocolId) -> Option<u64> {
        if from == A {
            // Bounce the parked waiter — conditionally: its deadline
            // abort may have claimed the word first, and overwriting an
            // ABORTED status would resurrect a withdrawn request.
            // order: AcqRel — a successful bounce orders the waiter's
            // migration after this transaction's validate.
            let _ = self.status.compare_exchange(
                ST_WAITING,
                ST_INVALID,
                Ordering::AcqRel,
                Ordering::Acquire,
            );
        }
        Some(0)
    }

    async fn publish_mode(&self, _ctx: &(), to: ProtocolId) {
        // order: Release — hint only; must trail the validity stores.
        self.mode.store(to.0, Ordering::Release);
    }

    fn now(&self, _ctx: &()) -> u64 {
        0
    }
}

fn kernel_abort_switch(cfg: Config) -> Report {
    explore(
        "kernel_abort_switch",
        cfg,
        Arc::new(|| {
            let obj = Arc::new(AbortSwitchObj::new());
            let data = Arc::new(RaceCell::new("abort payload", 0u64));
            let migrations = Arc::new(AtomicU64::new(0));
            // The parked waiter's deadline fires: it withdraws with a
            // conditional abort. If the switch's bounce won the word
            // first, the withdrawal is off and the waiter must follow
            // the migration to B instead (the abortable lock's
            // failed-CAS-means-granted rule).
            let (o2, d2, m2) = (obj.clone(), data.clone(), migrations.clone());
            let h = thread::spawn(move || {
                // order: AcqRel/Acquire — the abort CAS arbitrates
                // against the bounce CAS on the same word; the loser
                // must observe the winner's write.
                match o2.status.compare_exchange(
                    ST_WAITING,
                    ST_ABORTED,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {} // cleanly aborted: never enters a CS
                    Err(s) => {
                        assert_eq!(s, ST_INVALID, "only the bounce may deny an abort");
                        // order: Acquire pairs with validate's Release.
                        while o2.b_valid.load(Ordering::Acquire) == 0 {
                            thread::yield_now();
                        }
                        o2.b.lock();
                        let v = d2.get();
                        d2.set(v + 1);
                        o2.b.unlock();
                        // order: Relaxed — joined before reading.
                        m2.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
            // The holder: critical section under A, then the mode
            // change (Handoff), then one more passage through B.
            let v = data.get();
            data.set(v + 1);
            drive(obj.kernel.switch(&*obj, &(), A, B));
            obj.b.lock();
            let v = data.get();
            data.set(v + 1);
            obj.b.unlock();
            h.join().unwrap();
            // Conservation: the waiter either aborted or migrated —
            // exactly one, and the payload count must agree.
            // order: Relaxed — the join above orders the increment.
            let migrated = migrations.load(Ordering::Relaxed);
            // order: Relaxed — the waiter thread is joined; no writer left.
            let st = obj.status.load(Ordering::Relaxed);
            assert!(
                (st == ST_ABORTED && migrated == 0) || (st == ST_INVALID && migrated == 1),
                "abort/bounce arbitration lost the waiter (status {st}, migrated {migrated})"
            );
            assert_eq!(data.get(), 2 + migrated, "a passage was lost");
            assert_eq!(obj.kernel.switches(), 1);
        }),
    )
}

/// Miniature of the robust lock's crash recovery: the switching holder
/// died after commit but before the invalidate fence, leaving the dead
/// protocol's validity word still set and its sub-lock still claimed.
/// Recovery must run the fence *before* the dead claim is released —
/// a fresh acquirer that wins the sub-lock afterwards re-checks the
/// validity word and bails to the new protocol.
struct RecoveryObj {
    kernel: SwitchKernel<SharedWorld>,
    /// The dead protocol's sub-lock (held by the crashed switcher).
    a: TtsLock,
    /// The dead protocol's validity word.
    a_valid: AtomicU64,
    /// The new protocol's sub-lock.
    b: TtsLock,
    b_valid: AtomicU64,
    mode: AtomicU8,
}

impl RecoveryObj {
    fn new() -> RecoveryObj {
        let obj = RecoveryObj {
            kernel: SwitchKernel::<SharedWorld>::builder()
                .register(A, "a", SwitchStyle::Handoff)
                .register(B, "b", SwitchStyle::Handoff)
                .build(),
            a: TtsLock::new(),
            a_valid: AtomicU64::new(1),
            b: TtsLock::new(),
            b_valid: AtomicU64::new(0),
            mode: AtomicU8::new(A.0),
        };
        // The crashed switcher's claim on A, released only by recovery.
        let held = obj.a.try_lock();
        assert!(held, "fresh sub-lock must be claimable by the holder");
        obj
    }
}

impl SwitchableObject for RecoveryObj {
    type Ctx = ();

    async fn validate(&self, _ctx: &(), to: ProtocolId, _from: ProtocolId, _state: u64) {
        let w = if to == B {
            &self.b_valid
        } else {
            &self.a_valid
        };
        // order: Release pairs with an acquirer's validity re-check.
        w.store(1, Ordering::Release);
    }

    async fn invalidate(&self, _ctx: &(), from: ProtocolId, _to: ProtocolId) -> Option<u64> {
        let w = if from == A {
            &self.a_valid
        } else {
            &self.b_valid
        };
        // order: Release — the fence must be visible to any acquirer
        // that subsequently wins the dead sub-lock.
        w.store(0, Ordering::Release);
        Some(0)
    }

    async fn publish_mode(&self, _ctx: &(), to: ProtocolId) {
        // order: Release — hint only; must trail the validity stores.
        self.mode.store(to.0, Ordering::Release);
    }

    fn now(&self, _ctx: &()) -> u64 {
        0
    }
}

fn kernel_recovery(cfg: Config) -> Report {
    explore(
        "kernel_recovery",
        cfg,
        Arc::new(|| {
            let obj = Arc::new(RecoveryObj::new());
            let data = Arc::new(RaceCell::new("recovery payload", 0u64));
            // The fresh acquirer: dispatched to A before the crash, it
            // blocks on A's sub-lock, wins it once recovery releases
            // the dead claim, and must then re-check A's validity word
            // — entering through A iff the word survived.
            let (o2, d2) = (obj.clone(), data.clone());
            let h = thread::spawn(move || {
                o2.a.lock();
                // order: Acquire pairs with the recovery fence's store.
                if o2.a_valid.load(Ordering::Acquire) == 1 {
                    // The fence never landed: a passage through the
                    // dead protocol, unserialized against B's holder.
                    let v = d2.get();
                    d2.set(v + 1);
                    o2.a.unlock();
                } else {
                    o2.a.unlock();
                    o2.b.lock();
                    let v = d2.get();
                    d2.set(v + 1);
                    o2.b.unlock();
                }
            });
            // The crash: the switching holder died after commit,
            // before the invalidate fence (B published, A still valid).
            drive(
                obj.kernel
                    .switch_crashed(&*obj, &(), A, B, CrashPoint::AfterCommit),
            );
            // Recovery: complete the transition (the fence clears A's
            // validity word), then release the dead holder's claim.
            drive(obj.kernel.recover(&*obj, &()));
            obj.a.unlock();
            // The recovered object serves a passage through B.
            obj.b.lock();
            let v = data.get();
            data.set(v + 1);
            obj.b.unlock();
            h.join().unwrap();
            assert_eq!(data.get(), 2, "a passage was lost across the recovery");
            assert_eq!(obj.kernel.current(), B);
        }),
    )
}

fn kernel_commit_first(cfg: Config) -> Report {
    explore(
        "kernel_commit_first",
        cfg,
        Arc::new(|| {
            let obj = Arc::new(CommitFirstObj::new());
            let o2 = obj.clone();
            // The racer: wins B's consensus object the instant it
            // becomes valid and immediately runs the opposite change.
            // Holding the consensus object entitles it to the
            // exclusive-discipline `switch`, which panics if the
            // kernel's state is stale (the pre-kernel native-lock bug).
            let h = thread::spawn(move || {
                // order: Acquire pairs with validate's Release.
                while o2.b_valid.load(Ordering::Acquire) == 0 {
                    thread::yield_now();
                }
                drive(o2.kernel.switch(&*o2, &(), B, A));
            });
            drive(obj.kernel.switch(&*obj, &(), A, B));
            h.join().unwrap();
            assert_eq!(obj.kernel.switches(), 2);
            assert_eq!(obj.kernel.current(), A, "the racer's change committed last");
        }),
    )
}

// ---------------------------------------------------------------------
// Service-arena scenario
// ---------------------------------------------------------------------

/// Shared state of the [`arena_inflation`] miniature: a one-object
/// arena whose packed word is the lock in the flat regime and an
/// in-flight-refcounted pointer to `lock` in the inflated regime.
struct MiniArena {
    /// The slot word (layout in the local constants below).
    word: AtomicU64,
    /// The one "slab entry", deliberately recycled across inflations so
    /// a stale registration that survives deflation would reach the
    /// *new* era's lock — the ABA the registration CAS must prevent.
    lock: TtsLock,
    /// Critical-section payload; the model's vector clocks flag any
    /// unserialized access.
    payload: RaceCell<u64>,
}

/// How [`MiniArena::acquire`] won, so release takes the matching door.
enum MiniHold {
    Flat,
    Inflated,
}

impl MiniArena {
    fn acquire(&self) -> MiniHold {
        // Local mini-word layout (the real one is
        // crates/service/src/slot.rs): thresholds are 1, so a single
        // contended release inflates and a single calm inflated
        // release deflates — every boundary is reachable within the
        // preemption bound.
        const HELD: u64 = 1;
        const INFLATED: u64 = 2;
        const WAITERS: u64 = 4;
        const REF_ONE: u64 = 8;
        let mut fought = false;
        loop {
            // order: Acquire — pairs with the inflation publish and
            // the releaser's store, as in the native arena.
            let w = self.word.load(Ordering::Acquire);
            if w & INFLATED != 0 {
                // Register (+REF_ONE) before touching the lock: the
                // refcount pins the entry against deflation; a failed
                // CAS means the word moved — possibly deflated — so
                // reload and re-dispatch.
                // order: AcqRel — the registration is the consensus
                // against the demotion CAS on the same word.
                if self
                    .word
                    .compare_exchange(w, w + REF_ONE, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    self.lock.lock();
                    return MiniHold::Inflated;
                }
                continue;
            }
            if w & HELD == 0 {
                let next = if fought {
                    w | HELD | WAITERS
                } else {
                    (w | HELD) & !WAITERS
                };
                // order: AcqRel — winning the flat word is the lock
                // acquisition itself.
                if self
                    .word
                    .compare_exchange(w, next, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    return MiniHold::Flat;
                }
                fought = true;
                continue;
            }
            fought = true;
            if w & WAITERS == 0 {
                // order: Relaxed — evidence bit; the releaser reads it
                // under its own word load.
                let _ = self.word.compare_exchange(
                    w,
                    w | WAITERS,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
                continue;
            }
            thread::yield_now();
        }
    }

    fn release(&self, hold: MiniHold) {
        const HELD: u64 = 1;
        const INFLATED: u64 = 2;
        const WAITERS: u64 = 4;
        const REF_ONE: u64 = 8;
        const REF_MASK: u64 = !7;
        match hold {
            MiniHold::Flat => {
                loop {
                    // order: Relaxed — we own HELD; the CAS below
                    // publishes.
                    let w = self.word.load(Ordering::Relaxed);
                    if w & WAITERS != 0 {
                        // Contended release at threshold 1: inflate.
                        // We own HELD, so publishing the inflated word
                        // (ref 0, evidence consumed) in one store is
                        // the whole promotion.
                        // order: Release — publishes the entry the
                        // INFLATED bit points acquirers at.
                        self.word.store(INFLATED, Ordering::Release);
                        return;
                    }
                    // order: Release — ends the critical section.
                    if self
                        .word
                        .compare_exchange(w, w & !HELD, Ordering::Release, Ordering::Relaxed)
                        .is_ok()
                    {
                        return;
                    }
                }
            }
            MiniHold::Inflated => {
                loop {
                    // order: Relaxed — arbitration is via the CASes.
                    let w = self.word.load(Ordering::Relaxed);
                    if w & REF_MASK == REF_ONE {
                        // Calm at threshold 1 (our registration is the
                        // only one): demote. The CAS expects our exact
                        // ref==1 word, so it arbitrates against racing
                        // registrations.
                        // order: AcqRel — the demotion consensus.
                        if self
                            .word
                            .compare_exchange(w, 0, Ordering::AcqRel, Ordering::Relaxed)
                            .is_ok()
                        {
                            // Provably uncontended: we held the lock
                            // and no registration was en route.
                            self.lock.unlock();
                            return;
                        }
                        continue;
                    }
                    // Deregister and release normally.
                    // order: Release — ends the critical section.
                    if self
                        .word
                        .compare_exchange(w, w - REF_ONE, Ordering::Release, Ordering::Relaxed)
                        .is_ok()
                    {
                        self.lock.unlock();
                        return;
                    }
                }
            }
        }
    }
}

/// Miniature of the service arena's native slot-word protocol
/// (`crates/service/src/native.rs`), with both thresholds at 1 so the
/// checker reaches every boundary: flat wins racing the inflation
/// publish, registration racing demotion on the same word, a stale
/// registration retrying against the deflated word, and re-inflation
/// recycling the same lock. Two threads of two lock/unlock pairs each;
/// mutual exclusion is checked by a [`RaceCell`] payload and a final
/// count.
fn arena_inflation(cfg: Config) -> Report {
    explore(
        "arena_inflation",
        cfg,
        Arc::new(|| {
            let arena = Arc::new(MiniArena {
                word: AtomicU64::new(0),
                lock: TtsLock::new(),
                payload: RaceCell::new("arena payload", 0u64),
            });
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let a = arena.clone();
                    thread::spawn(move || {
                        for _ in 0..2 {
                            let hold = a.acquire();
                            let v = a.payload.get();
                            a.payload.set(v + 1);
                            a.release(hold);
                        }
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            let hold = arena.acquire();
            assert_eq!(arena.payload.get(), 4, "an increment was lost");
            arena.release(hold);
        }),
    )
}
