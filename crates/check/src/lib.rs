//! In-repo verification tooling (never a dependency of shipping code).
//!
//! Two engines, each with a thin binary wrapper:
//!
//! * [`scenarios`] + `conc-check` — the repo's lock/kernel scenarios
//!   run under the bounded interleaving model checker in
//!   `reactive_native::model`. A clean pass proves the native
//!   protocols and the switching kernel race-free up to the preemption
//!   bound; the seeded regression mutants (`--cfg conc_check_mutant` +
//!   `CONC_CHECK_MUTANT`) prove the checker can still see the two
//!   races the kernel extraction fixed.
//! * [`lint`] + `lint` — textual/structural repo invariants: memory
//!   orderings justified, `unsafe` blocks documented, no maps on the
//!   simulator hot path, the 16-byte event assert present, and the
//!   experiment tables in sync with the benchmark output keys.

pub mod lint;
pub mod scenarios;
