//! Property-based tests of the reactive algorithms' core guarantees
//! under adversarial workload shapes: mutual exclusion and
//! linearizability must survive protocol changes at any point, and the
//! never-both-free invariant must hold at quiescence.

use proptest::prelude::*;
use reactive_core::lock::{ReactiveLock, ReleaseMode};
use reactive_core::policy::{Always, Competitive3, Hysteresis, Policy};
use reactive_core::ReactiveFetchOp;

use alewife_sim::{Config, Machine};
use sync_protocols::spin::{FREE, INVALID_PTR, NIL};

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Mutual exclusion with randomly chosen policies and *bursty*
    /// arrival patterns (idle gaps force protocol changes both ways).
    #[test]
    fn lock_excludes_under_bursts(
        procs in 2usize..14,
        burst in 2u64..10,
        gap in 0u64..4_000,
        policy_sel in 0usize..3,
        seed in 1u64..u64::MAX,
    ) {
        let m = Machine::new(Config::default().nodes(procs).seed(seed));
        let policy: Box<dyn Policy> = match policy_sel {
            0 => Box::new(Always),
            1 => Box::new(Competitive3::new(8_800.0)),
            _ => Box::new(Hysteresis::new(4, 8)),
        };
        let lock = ReactiveLock::builder(&m, 0)
            .max_procs(procs)
            .boxed_policy(policy)
            .build();
        let shared = m.alloc_on(1, 1);
        let rounds = 3u64;
        for p in 0..procs {
            let cpu = m.cpu(p);
            let lock = lock.clone();
            m.spawn(p, async move {
                for _ in 0..rounds {
                    for _ in 0..burst {
                        let t = lock.acquire(&cpu).await;
                        let v = cpu.read(shared).await;
                        cpu.work(10 + cpu.rand_below(60)).await;
                        cpu.write(shared, v + 1).await;
                        lock.release(&cpu, t).await;
                    }
                    // Idle gap: contention collapses, tempting a switch
                    // back to TTS (only proc 0 stays a little active).
                    if cpu.node() != 0 {
                        cpu.work(gap).await;
                    }
                }
            });
        }
        m.run();
        prop_assert_eq!(m.live_tasks(), 0, "reactive lock deadlocked");
        prop_assert_eq!(m.read_word(shared), procs as u64 * rounds * burst);
    }

    /// At quiescence, exactly one sub-lock is available: either the TTS
    /// flag is FREE and the queue tail is INVALID, or the TTS flag is
    /// BUSY and the queue tail is a valid empty queue (the §3.3.1
    /// never-both-free invariant).
    #[test]
    fn never_both_free_at_quiescence(
        procs in 2usize..10,
        seed in 1u64..u64::MAX,
    ) {
        let m = Machine::new(Config::default().nodes(procs).seed(seed));
        let lock = ReactiveLock::new(&m, 0, procs);
        for p in 0..procs {
            let cpu = m.cpu(p);
            let lock = lock.clone();
            m.spawn(p, async move {
                for _ in 0..12 {
                    let t = lock.acquire(&cpu).await;
                    cpu.work(cpu.rand_below(80)).await;
                    lock.release(&cpu, t).await;
                    cpu.work(cpu.rand_below(150)).await;
                }
            });
        }
        m.run();
        prop_assert_eq!(m.live_tasks(), 0);
        // Inspect the raw lock words.
        let (tts_a, tail_a, _mode) = lock.inspect_words();
        let tts = m.read_word(tts_a);
        let tail = m.read_word(tail_a);
        let tts_mode_ok = tts == FREE && tail == INVALID_PTR;
        let queue_mode_ok = tts != FREE && tail == NIL;
        prop_assert!(
            tts_mode_ok || queue_mode_ok,
            "invariant broken: tts={} tail={}", tts, tail
        );
    }

    /// The reactive fetch-and-op stays a correct fetch-and-add through
    /// arbitrary contention ramps (rising then falling).
    #[test]
    fn fetch_op_correct_through_ramp(
        procs in 2usize..14,
        seed in 1u64..u64::MAX,
    ) {
        let m = Machine::new(Config::default().nodes(procs).seed(seed));
        let f = ReactiveFetchOp::new(&m, 0, procs);
        let total: u64 = 10;
        for p in 0..procs {
            let cpu = m.cpu(p);
            let f = f.clone();
            m.spawn(p, async move {
                // Ramp up: everyone starts dense, then spreads out.
                for i in 0..total {
                    f.fetch_add(&cpu, 1).await;
                    cpu.work(cpu.rand_below(30 + 60 * i)).await;
                }
            });
        }
        m.run();
        prop_assert_eq!(m.live_tasks(), 0, "reactive fetch-op deadlocked");
        prop_assert_eq!(m.read_word(f.var()), procs as u64 * total);
    }
}

/// Deterministic regression: a release-mode token can be observed and
/// matched (API contract of the two-level acquire/release interface).
#[test]
fn release_mode_tokens_are_plain_data() {
    let m = Machine::new(Config::default().nodes(2));
    let lock = ReactiveLock::new(&m, 0, 2);
    let cpu = m.cpu(0);
    let seen = std::rc::Rc::new(std::cell::Cell::new(false));
    let seen2 = seen.clone();
    m.spawn(0, async move {
        let t = lock.acquire(&cpu).await;
        match t {
            ReleaseMode::Tts
            | ReleaseMode::TtsToQueue
            | ReleaseMode::Queue(_)
            | ReleaseMode::QueueToTts(_) => seen2.set(true),
        }
        lock.release(&cpu, t).await;
    });
    m.run();
    assert!(seen.get());
}
