//! Negative-path tests for the simulator-side reactive builders: the
//! documented panic behaviour on misconfiguration — duplicate protocol
//! registration, unknown initial protocol, zero-protocol build, and
//! invalid policy parameters — is part of the public API contract.

use std::rc::Rc;

use alewife_sim::{Config, Machine};
use reactive_core::policy::{
    Competitive3, Hysteresis, Instrument, ProtocolId, SimKernel, SwitchLog, SwitchStyle,
};
use reactive_core::{ReactiveFetchOp, ReactiveLock};

fn machine() -> Machine {
    Machine::new(Config::default().nodes(4))
}

// -- protocol registration (now owned by the switching kernel) ---------

#[test]
#[should_panic(expected = "duplicate or out-of-order registration")]
fn kernel_rejects_duplicate_protocol_ids() {
    let _ = SimKernel::builder()
        .register(ProtocolId(0), "a", SwitchStyle::Handoff)
        .register(ProtocolId(0), "a-again", SwitchStyle::Handoff);
}

#[test]
#[should_panic(expected = "duplicate or out-of-order registration")]
fn kernel_rejects_out_of_order_slots() {
    let _ = SimKernel::builder()
        .register(ProtocolId(1), "b", SwitchStyle::Handoff)
        .register(ProtocolId(0), "a", SwitchStyle::Handoff);
}

#[test]
#[should_panic(expected = "at least one protocol")]
fn kernel_rejects_zero_protocol_build() {
    let _ = SimKernel::builder().build();
}

#[test]
#[should_panic(expected = "not a registered slot")]
fn kernel_rejects_unregistered_initial_protocol() {
    let _ = SimKernel::builder()
        .register(ProtocolId(0), "a", SwitchStyle::Handoff)
        .initial(ProtocolId(3))
        .build();
}

// -- initial protocol --------------------------------------------------

#[test]
#[should_panic(expected = "not P5")]
fn lock_builder_rejects_unknown_initial_protocol() {
    let m = machine();
    let _ = ReactiveLock::builder(&m, 0).initial_protocol(ProtocolId(5));
}

#[test]
#[should_panic(expected = "not P2")]
fn lock_builder_rejects_fetch_op_only_protocol() {
    // The fetch-op object has a slot 2 (combining tree); the lock does
    // not — ids are per-object, not global.
    let m = machine();
    let _ = ReactiveLock::builder(&m, 0).initial_protocol(ProtocolId(2));
}

// -- policy parameter validation through the builders ------------------

#[test]
#[should_panic(expected = "round-trip cost must be positive")]
fn lock_builder_rejects_nonpositive_competitive_threshold() {
    let m = machine();
    let _ = ReactiveLock::builder(&m, 0).policy(Competitive3::new(0.0));
}

#[test]
#[should_panic(expected = "hysteresis thresholds must be positive")]
fn fetch_op_builder_rejects_zero_hysteresis() {
    let m = machine();
    let _ = ReactiveFetchOp::builder(&m, 0).policy(Hysteresis::new(0, 4));
}

// -- the happy path next to the cliffs ---------------------------------

#[test]
fn valid_builder_configurations_still_build() {
    let m = machine();
    let log = Rc::new(SwitchLog::new());
    let _ = ReactiveLock::builder(&m, 0)
        .max_procs(4)
        .policy(Hysteresis::new(4, 4))
        .instrument(log.clone() as Rc<dyn Instrument>)
        .initial_protocol(reactive_core::lock::PROTO_QUEUE)
        .build();
    let _ = ReactiveFetchOp::builder(&m, 0)
        .max_procs(4)
        .policy(Competitive3::new(8_800.0))
        .build();
    assert_eq!(log.count(), 0, "building must not emit switch events");
}
