//! The §3.2 framework checkers as a cross-object oracle: every
//! kernel-built reactive object's commit log must lower to a legal
//! change history in which at most one protocol is ever valid (the
//! C-seriality half holds by construction for point-interval commit
//! logs — the kernel serializes each change — so the validity replay
//! is the discriminating check; see `reactive_api::oracle`).
//!
//! The naive reference design (`framework::NaiveManager`) is checked
//! from its own recorded histories in the `framework` module tests;
//! here the *practical* algorithms — which collapse the framework's
//! layering for performance but route every mode change through the
//! shared `SwitchKernel` — are checked from their instrumentation
//! streams, closing the loop between §3.2's correctness conditions and
//! the production switch paths.

use std::rc::Rc;

use alewife_sim::{Config, Machine};
use reactive_core::framework::check_switch_history;
use reactive_core::policy::{Instrument, SwitchLog};
use reactive_core::{barrier, fetch_op, lock, mp, ReactiveBarrier, ReactiveFetchOp, ReactiveLock};
use sync_protocols::barrier::BarrierCtx;
use sync_protocols::waiting::AlwaysSpin;

/// Contend hard, then fade to a single processor, so the object
/// commits changes in both directions.
fn phases(procs: usize) -> (usize, u64, u64) {
    (procs, 20, 40)
}

#[test]
fn reactive_lock_history_is_single_valid() {
    let (procs, hot, solo) = phases(16);
    let m = Machine::new(Config::default().nodes(procs));
    let log = Rc::new(SwitchLog::new());
    let l = ReactiveLock::builder(&m, 0)
        .max_procs(procs)
        .instrument(log.clone() as Rc<dyn Instrument>)
        .build();
    for p in 0..procs {
        let cpu = m.cpu(p);
        let l = l.clone();
        m.spawn(p, async move {
            for _ in 0..hot {
                let t = l.acquire(&cpu).await;
                cpu.work(50).await;
                l.release(&cpu, t).await;
                cpu.work(cpu.rand_below(100)).await;
            }
            if cpu.node() == 0 {
                for _ in 0..solo {
                    let t = l.acquire(&cpu).await;
                    cpu.work(10).await;
                    l.release(&cpu, t).await;
                    cpu.work(20).await;
                }
            }
        });
    }
    m.run();
    assert_eq!(m.live_tasks(), 0);
    let evs = log.events();
    assert!(!evs.is_empty(), "workload must commit at least one change");
    check_switch_history(&evs, 2, lock::PROTO_TTS).expect("reactive lock history");
}

#[test]
fn reactive_fetch_op_history_is_single_valid() {
    let (procs, hot, solo) = phases(32);
    let m = Machine::new(Config::default().nodes(procs));
    let log = Rc::new(SwitchLog::new());
    let f = ReactiveFetchOp::builder(&m, 0)
        .max_procs(procs)
        .instrument(log.clone() as Rc<dyn Instrument>)
        .build();
    for p in 0..procs {
        let cpu = m.cpu(p);
        let f = f.clone();
        m.spawn(p, async move {
            for _ in 0..hot {
                f.fetch_add(&cpu, 1).await;
                cpu.work(cpu.rand_below(100)).await;
            }
            if cpu.node() == 0 {
                for _ in 0..solo {
                    f.fetch_add(&cpu, 1).await;
                    cpu.work(30).await;
                }
            }
        });
    }
    m.run();
    assert_eq!(m.live_tasks(), 0);
    let evs = log.events();
    assert!(!evs.is_empty());
    check_switch_history(&evs, 3, fetch_op::PROTO_TTS).expect("reactive fetch-op history");
}

#[test]
fn reactive_mp_lock_history_is_single_valid() {
    let (procs, hot, solo) = phases(8);
    let m = Machine::new(Config::default().nodes(procs));
    let log = Rc::new(SwitchLog::new());
    let l = mp::ReactiveMpLock::builder(&m, 0, 0)
        .max_procs(procs)
        .instrument(log.clone() as Rc<dyn Instrument>)
        .build();
    for p in 0..procs {
        let cpu = m.cpu(p);
        let l = l.clone();
        m.spawn(p, async move {
            for _ in 0..hot {
                let t = l.acquire(&cpu).await;
                cpu.work(10).await;
                l.release(&cpu, t).await;
                cpu.work(cpu.rand_below(80)).await;
            }
            if cpu.node() == 1 {
                for _ in 0..solo {
                    let t = l.acquire(&cpu).await;
                    cpu.work(10).await;
                    l.release(&cpu, t).await;
                    cpu.work(30).await;
                }
            }
        });
    }
    m.run();
    assert_eq!(m.live_tasks(), 0);
    check_switch_history(&log.events(), 2, mp::PROTO_TTS).expect("reactive MP lock history");
}

#[test]
fn reactive_mp_fetch_op_history_is_single_valid() {
    // 32-way contention regression for the concurrent-changer race:
    // any completed central-MP requester may decide a change, so two
    // changers can race; the manager-arbitrated conditional invalidate
    // must let exactly one win. Before that fix this workload tripped
    // the kernel's validity assertion (double MP -> TTS switches, TTS
    // flag double-free), and the lowered history below would violate
    // at-most-one-valid.
    let (procs, hot, solo) = phases(32);
    let m = Machine::new(Config::default().nodes(procs));
    let log = Rc::new(SwitchLog::new());
    let f = mp::ReactiveMpFetchOp::builder(&m, 0, 0)
        .max_procs(procs)
        .instrument(log.clone() as Rc<dyn Instrument>)
        .build();
    for p in 0..procs {
        let cpu = m.cpu(p);
        let f = f.clone();
        m.spawn(p, async move {
            for _ in 0..hot {
                f.fetch_add(&cpu, 1).await;
                cpu.work(cpu.rand_below(80)).await;
            }
            if cpu.node() == 1 {
                for _ in 0..solo {
                    f.fetch_add(&cpu, 1).await;
                    cpu.work(25).await;
                }
            }
        });
    }
    m.run();
    assert_eq!(m.live_tasks(), 0);
    check_switch_history(&log.events(), 3, mp::PROTO_TTS).expect("reactive MP fetch-op history");
}

#[test]
fn reactive_barrier_history_is_single_valid() {
    let procs = 32;
    let m = Machine::new(Config::default().nodes(procs));
    let log = Rc::new(SwitchLog::new());
    let bar = ReactiveBarrier::builder(&m, 0, procs)
        .instrument(log.clone() as Rc<dyn Instrument>)
        .build();
    for p in 0..procs {
        let cpu = m.cpu(p);
        let bar = bar.clone();
        m.spawn(p, async move {
            let mut ctx = BarrierCtx::default();
            for _ in 0..8 {
                cpu.work(cpu.rand_below(100)).await;
                bar.wait(&cpu, &mut ctx, &AlwaysSpin).await;
            }
        });
    }
    m.run();
    assert_eq!(m.live_tasks(), 0);
    let evs = log.events();
    assert!(!evs.is_empty(), "32-way arrivals should switch");
    check_switch_history(&evs, 2, barrier::PROTO_CENTRAL).expect("reactive barrier history");
}
