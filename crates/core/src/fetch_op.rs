//! The reactive fetch-and-op algorithm (§3.3.2, Appendix C).
//!
//! Chooses among three protocols at run time:
//!
//! 1. [`PROTO_TTS`] — a counter protected by a **test-and-test-and-set
//!    lock** (lowest latency, worst scaling),
//! 2. [`PROTO_QUEUE`] — a counter protected by an **MCS queue lock**
//!    (fair, moderate scaling), and
//! 3. [`PROTO_TREE`] — a **software combining tree** (high throughput
//!    under contention, high fixed cost).
//!
//! The consensus objects are the two lock words and the tree root (a
//! one-word lock guarding the `tree_valid` flag and the counter). The
//! invariant mirrors the reactive lock: at most one protocol is valid,
//! invalid locks are left busy/INVALID, and the combining-tree root
//! answers climbs with a retry sentinel while invalid — a process that
//! reaches an invalid root *completes the protocol* by distributing the
//! retry down to everyone it combined with (§3.3.2).
//!
//! Monitoring (§3.3.2): failed `test&set`s (TTS → queue), empty-queue
//! streaks (queue → TTS), queue waiting time (queue → tree, the queue is
//! FIFO so waiting time estimates contention), and the combining rate
//! observed at the root (tree → queue). The monitor only *proposes* a
//! better protocol through an [`Observation`]; the configured [`Policy`]
//! decides, and may direct a change to **any** of the three slots — the
//! switch machinery below handles all six ordered protocol pairs, which
//! is what lets a 3-protocol object express e.g. "switch from the
//! queue-counter straight to the combining tree". The paper's
//! optimization of keeping the fetch-and-op value "in a common location
//! so updates are not necessary" is used: all three protocols mutate the
//! same counter word.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use alewife_sim::{Addr, Cpu, Machine};
use sync_protocols::fetch_op::{CombiningTree, FetchOp, RETRY_SENTINEL};
use sync_protocols::spin::{
    dec, enc, Backoff, FREE, GO, INITIAL_DELAY, INVALID_PTR, INVALID_STATUS, NIL, WAITING,
};

use crate::policy::{
    Always, Instrument, Observation, Policy, ProtocolId, SimKernel, SwitchStyle, SwitchableObject,
};

/// Slot of the TTS-lock-protected counter.
pub const PROTO_TTS: ProtocolId = ProtocolId(0);
/// Slot of the queue-lock-protected counter.
pub const PROTO_QUEUE: ProtocolId = ProtocolId(1);
/// Slot of the software combining tree.
pub const PROTO_TREE: ProtocolId = ProtocolId(2);

const MODE_TTS: u64 = PROTO_TTS.0 as u64;
const MODE_QUEUE: u64 = PROTO_QUEUE.0 as u64;

const QN_NEXT: u64 = 0;
const QN_STATUS: u64 = 1;

/// Failed `test&set`s per acquisition signalling high contention.
pub const TTS_RETRY_LIMIT: u64 = 4;
/// Consecutive empty-queue acquisitions signalling low contention.
pub const EMPTY_QUEUE_LIMIT: u64 = 4;
/// Queue waiting time (cycles) above which combining pays off.
pub const QUEUE_WAIT_LIMIT: u64 = 1_800;
/// Minimum ops combined at the root for the tree to be worthwhile.
pub const TREE_COMBINE_MIN: usize = 2;
/// Consecutive low-combining root visits before leaving the tree.
pub const TREE_LOW_STREAK: u64 = 4;

/// Builder for [`ReactiveFetchOp`].
pub struct ReactiveFetchOpBuilder<'m> {
    m: &'m Machine,
    home: usize,
    max_procs: usize,
    policy: Box<dyn Policy>,
    sink: Option<Rc<dyn Instrument>>,
}

impl<'m> ReactiveFetchOpBuilder<'m> {
    /// Size the combining tree and backoff bounds for up to `n`
    /// requesters (default: the machine's node count).
    pub fn max_procs(mut self, n: usize) -> Self {
        self.max_procs = n;
        self
    }

    /// Use the given switching policy (default: [`Always`]).
    pub fn policy(mut self, p: impl Policy + 'static) -> Self {
        self.policy = Box::new(p);
        self
    }

    /// Use an already-boxed policy (for `dyn Policy` plumbing).
    pub fn boxed_policy(mut self, p: Box<dyn Policy>) -> Self {
        self.policy = p;
        self
    }

    /// Report every committed protocol change to `sink`.
    pub fn instrument(mut self, sink: Rc<dyn Instrument>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Allocate and initialize the object (TTS valid; queue and tree
    /// invalid).
    pub fn build(self) -> ReactiveFetchOp {
        let m = self.m;
        let locks = m.alloc_on(self.home, 2);
        let mode = m.alloc_on(self.home, 1);
        let var = m.alloc_on(self.home, 1);
        let root = m.alloc_on(self.home, 2);
        // Initial state: TTS mode.
        m.write_word(locks, FREE);
        m.write_word(locks.plus(1), INVALID_PTR);
        m.write_word(mode, MODE_TTS);
        m.write_word(root, 0); // root lock free
        m.write_word(root.plus(1), 0); // tree invalid

        // All three slots are holder-based consensus objects (two lock
        // words and the root lock guarding `tree_valid`); the tree's
        // invalidation is performed at decision time under the root
        // lock, so its invalidate hook is a no-op (see the kernel's
        // hook contract).
        let mut kernel = SimKernel::builder()
            .register(PROTO_TTS, "tts-counter", SwitchStyle::Handoff)
            .register(PROTO_QUEUE, "queue-counter", SwitchStyle::Handoff)
            .register(PROTO_TREE, "combining-tree", SwitchStyle::Handoff)
            .policy(self.policy);
        if let Some(sink) = self.sink {
            kernel = kernel.sink(sink);
        }
        ReactiveFetchOp {
            locks,
            mode,
            var,
            root,
            tree: CombiningTree::new(m, self.home, self.max_procs),
            kernel: Rc::new(kernel.build()),
            empty_streak: Rc::new(Cell::new(0)),
            low_combine_streak: Rc::new(Cell::new(0)),
            pool: Rc::new(RefCell::new(vec![Vec::new(); m.nodes()])),
            max_procs: self.max_procs,
        }
    }
}

/// The reactive fetch-and-op object. Cheap to clone; clones share state.
#[derive(Clone)]
pub struct ReactiveFetchOp {
    /// `[tts_flag, queue_tail]` on one line.
    locks: Addr,
    /// Mode hint on its own line.
    mode: Addr,
    /// The fetch-and-op variable, shared by all three protocols.
    var: Addr,
    /// `[root_lock, tree_valid]` — the combining tree's consensus.
    root: Addr,
    tree: CombiningTree,
    kernel: Rc<SimKernel>,
    empty_streak: Rc<Cell<u64>>,
    low_combine_streak: Rc<Cell<u64>>,
    pool: Rc<RefCell<Vec<Vec<Addr>>>>,
    max_procs: usize,
}

impl std::fmt::Debug for ReactiveFetchOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactiveFetchOp")
            .field("var", &self.var)
            .finish()
    }
}

impl ReactiveFetchOp {
    /// Start building a reactive fetch-and-op homed on `home`.
    pub fn builder(m: &Machine, home: usize) -> ReactiveFetchOpBuilder<'_> {
        ReactiveFetchOpBuilder {
            m,
            home,
            max_procs: m.nodes(),
            policy: Box::new(Always),
            sink: None,
        }
    }

    /// Create a reactive fetch-and-op homed on `home`, with a combining
    /// tree sized for `max_procs` and the default always-switch policy.
    pub fn new(m: &Machine, home: usize, max_procs: usize) -> ReactiveFetchOp {
        ReactiveFetchOp::builder(m, home)
            .max_procs(max_procs)
            .build()
    }

    fn tts(&self) -> Addr {
        self.locks
    }

    fn tail(&self) -> Addr {
        self.locks.plus(1)
    }

    fn root_lock(&self) -> Addr {
        self.root
    }

    fn tree_valid(&self) -> Addr {
        self.root.plus(1)
    }

    /// The counter word (for post-run inspection).
    pub fn var(&self) -> Addr {
        self.var
    }

    /// Number of protocol changes performed so far.
    pub fn switches(&self) -> u64 {
        self.kernel.switches()
    }

    fn take_qnode(&self, cpu: &Cpu) -> Addr {
        let mut pool = self.pool.borrow_mut();
        match pool[cpu.node()].pop() {
            Some(a) => a,
            None => cpu.alloc_on(cpu.node(), 2),
        }
    }

    fn put_qnode(&self, cpu: &Cpu, q: Addr) {
        self.pool.borrow_mut()[cpu.node()].push(q);
    }

    /// Atomically add `delta`, returning the previous value. Dispatches
    /// on the mode hint; invalid protocols bounce us back here.
    pub async fn fetch_add(&self, cpu: &Cpu, delta: u64) -> u64 {
        loop {
            let mode = cpu.read(self.mode).await;
            let r = match mode {
                MODE_TTS => self.try_tts(cpu, delta).await,
                MODE_QUEUE => self.try_queue(cpu, delta).await,
                _ => self.try_tree(cpu, delta).await,
            };
            if let Some(v) = r {
                return v;
            }
        }
    }

    // ------------------------------------------------------------------
    // TTS-lock protocol
    // ------------------------------------------------------------------

    async fn try_tts(&self, cpu: &Cpu, delta: u64) -> Option<u64> {
        let mut backoff = Backoff::new(INITIAL_DELAY, 64 * self.max_procs as u64);
        let mut failures: u64 = 0;
        loop {
            if cpu.read(self.tts()).await == FREE {
                if cpu.test_and_set(self.tts()).await == FREE {
                    break;
                }
                failures += 1;
                backoff.pause(cpu).await;
            } else {
                let deadline = cpu.now() + 400;
                cpu.poll_until_deadline(self.tts(), |v| v == FREE, deadline)
                    .await;
            }
            if cpu.read(self.mode).await != MODE_TTS {
                return None;
            }
        }
        // Critical section: apply the op.
        let old = cpu.read(self.var).await;
        cpu.write(self.var, old.wrapping_add(delta)).await;
        self.empty_streak.set(0);
        let obs = if failures > TTS_RETRY_LIMIT {
            Observation::suboptimal(PROTO_TTS, PROTO_QUEUE, 150.0)
        } else {
            Observation::optimal(PROTO_TTS)
        };
        match self.kernel.observe(&obs) {
            Some(target) if target == PROTO_QUEUE => {
                // Switch TTS -> queue: the kernel validates the queue
                // and leaves TTS busy; releasing through the new
                // protocol is ours.
                let q = self.take_qnode(cpu);
                self.kernel
                    .switch(
                        &FopSwitch {
                            f: self,
                            q: Some(q),
                        },
                        cpu,
                        PROTO_TTS,
                        PROTO_QUEUE,
                    )
                    .await;
                self.release_queue(cpu, q).await;
                self.put_qnode(cpu, q);
            }
            Some(target) => {
                // Switch TTS -> tree directly: the kernel validates the
                // root's consensus object; both locks stay busy/INVALID.
                debug_assert_eq!(target, PROTO_TREE);
                self.kernel
                    .switch(&FopSwitch { f: self, q: None }, cpu, PROTO_TTS, PROTO_TREE)
                    .await;
            }
            None => {
                cpu.write(self.tts(), FREE).await;
            }
        }
        Some(old)
    }

    // ------------------------------------------------------------------
    // Queue-lock protocol
    // ------------------------------------------------------------------

    async fn try_queue(&self, cpu: &Cpu, delta: u64) -> Option<u64> {
        let q = self.take_qnode(cpu);
        cpu.write(q.plus(QN_NEXT), NIL).await;
        let t_enqueue = cpu.now();
        let pred = cpu.fetch_and_store(self.tail(), enc(q)).await;
        let mut empty = false;
        if pred == NIL {
            empty = true;
        } else if pred != INVALID_PTR {
            cpu.write(q.plus(QN_STATUS), WAITING).await;
            cpu.write(dec(pred).plus(QN_NEXT), enc(q)).await;
            let status = cpu.poll_until(q.plus(QN_STATUS), |v| v != WAITING).await;
            if status != GO {
                debug_assert_eq!(status, INVALID_STATUS);
                self.put_qnode(cpu, q);
                return None;
            }
        } else {
            self.invalidate_queue_from(cpu, q).await;
            self.put_qnode(cpu, q);
            return None;
        }
        let wait_time = cpu.now() - t_enqueue;

        // Critical section.
        let old = cpu.read(self.var).await;
        cpu.write(self.var, old.wrapping_add(delta)).await;

        // Monitoring: the queue is FIFO, so waiting time estimates
        // contention (§3.3.2). Long waits favour the combining tree;
        // empty-queue streaks favour TTS.
        let obs = if empty {
            let streak = self.empty_streak.get() + 1;
            self.empty_streak.set(streak);
            if streak > EMPTY_QUEUE_LIMIT {
                Observation::suboptimal(PROTO_QUEUE, PROTO_TTS, 15.0)
            } else {
                Observation::optimal(PROTO_QUEUE)
            }
        } else {
            self.empty_streak.set(0);
            if wait_time > QUEUE_WAIT_LIMIT {
                Observation::suboptimal(PROTO_QUEUE, PROTO_TREE, wait_time as f64 / 4.0)
            } else {
                Observation::optimal(PROTO_QUEUE)
            }
        };
        match self.kernel.observe(&obs) {
            Some(target) if target == PROTO_TTS => {
                // Switch queue -> TTS: the kernel invalidates the queue
                // (bouncing waiters); freeing the TTS flag is our
                // release through the new protocol.
                self.kernel
                    .switch(
                        &FopSwitch {
                            f: self,
                            q: Some(q),
                        },
                        cpu,
                        PROTO_QUEUE,
                        PROTO_TTS,
                    )
                    .await;
                cpu.write(self.tts(), FREE).await;
            }
            Some(target) => {
                // Switch queue -> tree: validate the root, invalidate
                // the queue. TTS stays busy.
                debug_assert_eq!(target, PROTO_TREE);
                self.kernel
                    .switch(
                        &FopSwitch {
                            f: self,
                            q: Some(q),
                        },
                        cpu,
                        PROTO_QUEUE,
                        PROTO_TREE,
                    )
                    .await;
            }
            None => {
                self.release_queue(cpu, q).await;
                self.put_qnode(cpu, q);
            }
        }
        Some(old)
    }

    // ------------------------------------------------------------------
    // Combining-tree protocol
    // ------------------------------------------------------------------

    async fn try_tree(&self, cpu: &Cpu, delta: u64) -> Option<u64> {
        match self.tree.climb(cpu, delta).await {
            Ok((total, owed)) => {
                // We won the root: take the consensus lock and check
                // validity atomically with the update.
                self.lock_root(cpu).await;
                let valid = cpu.read(self.tree_valid()).await == 1;
                if !valid {
                    self.unlock_root(cpu).await;
                    self.tree.distribute(cpu, &owed, RETRY_SENTINEL).await;
                    return None;
                }
                let old = cpu.read(self.var).await;
                cpu.write(self.var, old.wrapping_add(total)).await;

                // Monitoring: how much combining did this root visit
                // carry? (The paper piggybacks a fetch-and-increment to
                // measure the combining rate.)
                let combined = owed.len() + 1;
                let obs = if combined < TREE_COMBINE_MIN {
                    let streak = self.low_combine_streak.get() + 1;
                    self.low_combine_streak.set(streak);
                    if streak > TREE_LOW_STREAK {
                        Observation::suboptimal(PROTO_TREE, PROTO_QUEUE, 400.0)
                    } else {
                        Observation::optimal(PROTO_TREE)
                    }
                } else {
                    self.low_combine_streak.set(0);
                    Observation::optimal(PROTO_TREE)
                };
                // Decide while we hold the root so an approved change
                // can clear `tree_valid` atomically with the update
                // (the tree's invalidation happens here, under its
                // consensus object; the kernel's invalidate hook for
                // the tree slot is therefore a no-op).
                let target = self.kernel.observe(&obs);
                if target.is_some() {
                    cpu.write(self.tree_valid(), 0).await;
                }
                self.unlock_root(cpu).await;
                match target {
                    Some(t) if t == PROTO_QUEUE => {
                        // Switch tree -> queue.
                        let q = self.take_qnode(cpu);
                        self.kernel
                            .switch(
                                &FopSwitch {
                                    f: self,
                                    q: Some(q),
                                },
                                cpu,
                                PROTO_TREE,
                                t,
                            )
                            .await;
                        self.release_queue(cpu, q).await;
                        self.put_qnode(cpu, q);
                    }
                    Some(t) => {
                        // Switch tree -> TTS directly: the queue is
                        // already invalid; just free the TTS flag.
                        debug_assert_eq!(t, PROTO_TTS);
                        self.kernel
                            .switch(&FopSwitch { f: self, q: None }, cpu, PROTO_TREE, t)
                            .await;
                        cpu.write(self.tts(), FREE).await;
                    }
                    None => {}
                }
                self.tree.distribute(cpu, &owed, old).await;
                Some(old)
            }
            Err(base) => {
                if base == RETRY_SENTINEL {
                    None
                } else {
                    Some(base)
                }
            }
        }
    }

    async fn lock_root(&self, cpu: &Cpu) {
        let mut b = Backoff::new(4, 256);
        loop {
            if cpu.test_and_set(self.root_lock()).await == 0 {
                return;
            }
            b.pause(cpu).await;
        }
    }

    async fn unlock_root(&self, cpu: &Cpu) {
        cpu.write(self.root_lock(), 0).await;
    }

    // ------------------------------------------------------------------
    // Shared queue-lock plumbing (same as the reactive lock)
    // ------------------------------------------------------------------

    async fn release_queue(&self, cpu: &Cpu, q: Addr) {
        let next = cpu.read(q.plus(QN_NEXT)).await;
        if next == NIL {
            let old_tail = cpu.fetch_and_store(self.tail(), NIL).await;
            if old_tail == enc(q) {
                return;
            }
            let usurper = cpu.fetch_and_store(self.tail(), old_tail).await;
            let next = cpu.poll_until(q.plus(QN_NEXT), |v| v != NIL).await;
            if usurper != NIL {
                cpu.write(dec(usurper).plus(QN_NEXT), next).await;
            } else {
                cpu.write(dec(next).plus(QN_STATUS), GO).await;
            }
        } else {
            cpu.write(dec(next).plus(QN_STATUS), GO).await;
        }
    }

    async fn acquire_invalid_queue(&self, cpu: &Cpu, q: Addr) {
        loop {
            cpu.write(q.plus(QN_NEXT), NIL).await;
            let pred = cpu.fetch_and_store(self.tail(), enc(q)).await;
            if pred == INVALID_PTR {
                return;
            }
            cpu.write(q.plus(QN_STATUS), WAITING).await;
            cpu.write(dec(pred).plus(QN_NEXT), enc(q)).await;
            cpu.poll_until(q.plus(QN_STATUS), |v| v != WAITING).await;
        }
    }

    async fn invalidate_queue_from(&self, cpu: &Cpu, head: Addr) {
        let tail = cpu.fetch_and_store(self.tail(), INVALID_PTR).await;
        let mut head = head;
        while enc(head) != tail {
            let next = cpu.poll_until(head.plus(QN_NEXT), |v| v != NIL).await;
            cpu.write(head.plus(QN_STATUS), INVALID_STATUS).await;
            head = dec(next);
        }
        cpu.write(head.plus(QN_STATUS), INVALID_STATUS).await;
    }
}

/// The fetch-op's [`SwitchableObject`] hooks for all six ordered
/// protocol pairs: `q` carries the queue node involved in the
/// transition (the node being installed when entering the queue
/// protocol, the held node when leaving it; `None` for TTS ↔ tree
/// routes). The pair machinery that used to be six hand-written switch
/// blocks is now this one hook table — the kernel sequences it.
struct FopSwitch<'a> {
    f: &'a ReactiveFetchOp,
    q: Option<Addr>,
}

impl SwitchableObject for FopSwitch<'_> {
    type Ctx = Cpu;

    async fn validate(&self, cpu: &Cpu, to: ProtocolId, _from: ProtocolId, _state: u64) {
        match to {
            PROTO_QUEUE => {
                let q = self.q.expect("entering the queue protocol needs a node");
                self.f.acquire_invalid_queue(cpu, q).await;
            }
            PROTO_TREE => {
                // Set the root's validity flag under its lock.
                self.f.lock_root(cpu).await;
                cpu.write(self.f.tree_valid(), 1).await;
                self.f.unlock_root(cpu).await;
            }
            _ => {
                // TTS becomes valid when the switcher frees the flag —
                // its release through the new protocol, after the
                // transaction.
            }
        }
    }

    async fn invalidate(&self, cpu: &Cpu, from: ProtocolId, _to: ProtocolId) -> Option<u64> {
        if from == PROTO_QUEUE {
            let q = self
                .q
                .expect("leaving the queue protocol needs the held node");
            self.f.invalidate_queue_from(cpu, q).await;
            self.f.put_qnode(cpu, q);
        }
        // An invalid TTS flag is left BUSY; the tree's `tree_valid` was
        // cleared at decision time under the root lock. Both are
        // exclusive holds, so this cannot lose.
        Some(0)
    }

    async fn publish_mode(&self, cpu: &Cpu, to: ProtocolId) {
        cpu.write(self.f.mode, to.0 as u64).await;
    }

    fn now(&self, cpu: &Cpu) -> u64 {
        cpu.now()
    }

    fn note_switch(&self, cpu: &Cpu, from: ProtocolId, to: ProtocolId) {
        let name = match (from, to) {
            (_, PROTO_QUEUE) if from == PROTO_TREE => "reactive_fop.tree_to_queue",
            (_, PROTO_TTS) if from == PROTO_TREE => "reactive_fop.tree_to_tts",
            (_, PROTO_QUEUE) => "reactive_fop.to_queue",
            (_, PROTO_TREE) => "reactive_fop.to_tree",
            _ => "reactive_fop.to_tts",
        };
        cpu.bump(name, 1);
    }

    fn reset_monitor(&self, to: ProtocolId) {
        match to {
            PROTO_TREE => self.f.low_combine_streak.set(0),
            _ => self.f.empty_streak.set(0),
        }
    }
}

impl FetchOp for ReactiveFetchOp {
    async fn fetch_add(&self, cpu: &Cpu, delta: u64) -> u64 {
        ReactiveFetchOp::fetch_add(self, cpu, delta).await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Decision, SwitchLog};
    use alewife_sim::{Config, Machine};

    /// All returns must form the exact set {0..procs*iters}.
    fn hammer(procs: usize, iters: u64, think: u64) -> (u64, u64) {
        let m = Machine::new(Config::default().nodes(procs.max(2)));
        let f = ReactiveFetchOp::new(&m, 0, procs);
        let seen = Rc::new(RefCell::new(Vec::new()));
        for p in 0..procs {
            let cpu = m.cpu(p);
            let f = f.clone();
            let seen = seen.clone();
            m.spawn(p, async move {
                for _ in 0..iters {
                    let v = f.fetch_add(&cpu, 1).await;
                    seen.borrow_mut().push(v);
                    cpu.work(cpu.rand_below(think.max(1))).await;
                }
            });
        }
        m.run();
        assert_eq!(m.live_tasks(), 0, "reactive fetch-op deadlock");
        let mut got = seen.borrow().clone();
        got.sort_unstable();
        let want: Vec<u64> = (0..procs as u64 * iters).collect();
        assert_eq!(got, want, "returns not a fetch-and-add permutation");
        (m.read_word(f.var()), f.switches())
    }

    #[test]
    fn single_proc_stays_cheap() {
        let (v, switches) = hammer(1, 100, 50);
        assert_eq!(v, 100);
        assert_eq!(switches, 0);
    }

    #[test]
    fn two_procs_correct() {
        let (v, _) = hammer(2, 60, 100);
        assert_eq!(v, 120);
    }

    #[test]
    fn eight_procs_correct() {
        let (v, _) = hammer(8, 25, 100);
        assert_eq!(v, 200);
    }

    #[test]
    fn sixteen_procs_correct_and_adaptive() {
        let (v, switches) = hammer(16, 25, 50);
        assert_eq!(v, 400);
        assert!(switches >= 1, "16-way contention should trigger a switch");
    }

    #[test]
    fn thirtytwo_procs_reaches_tree() {
        let m = Machine::new(Config::default().nodes(32));
        let f = ReactiveFetchOp::new(&m, 0, 32);
        for p in 0..32 {
            let cpu = m.cpu(p);
            let f = f.clone();
            m.spawn(p, async move {
                for _ in 0..20 {
                    f.fetch_add(&cpu, 1).await;
                    cpu.work(cpu.rand_below(100)).await;
                }
            });
        }
        m.run();
        assert_eq!(m.live_tasks(), 0);
        assert_eq!(m.read_word(f.var()), 640);
        let st = m.stats();
        assert!(
            st.counter("reactive_fop.to_tree") >= 1,
            "32-way contention should reach the combining tree; counters: {:?}",
            st.counters
        );
    }

    #[test]
    fn contention_fade_returns_from_tree() {
        let m = Machine::new(Config::default().nodes(32));
        let f = ReactiveFetchOp::new(&m, 0, 32);
        for p in 0..32 {
            let cpu = m.cpu(p);
            let f = f.clone();
            m.spawn(p, async move {
                for _ in 0..15 {
                    f.fetch_add(&cpu, 1).await;
                    cpu.work(cpu.rand_below(100)).await;
                }
                if cpu.node() == 0 {
                    // Solo phase.
                    for _ in 0..40 {
                        f.fetch_add(&cpu, 1).await;
                        cpu.work(30).await;
                    }
                }
            });
        }
        m.run();
        assert_eq!(m.live_tasks(), 0);
        assert_eq!(m.read_word(f.var()), 32 * 15 + 40);
        let st = m.stats();
        // It must have left the tree once contention faded.
        if st.counter("reactive_fop.to_tree") > 0 {
            assert!(
                st.counter("reactive_fop.tree_to_queue") + st.counter("reactive_fop.tree_to_tts")
                    >= 1,
                "never left the tree; counters: {:?}",
                st.counters
            );
        }
    }

    #[test]
    fn deltas_other_than_one() {
        let m = Machine::new(Config::default().nodes(4));
        let f = ReactiveFetchOp::new(&m, 0, 4);
        for p in 0..4 {
            let cpu = m.cpu(p);
            let f = f.clone();
            m.spawn(p, async move {
                for i in 0..20 {
                    f.fetch_add(&cpu, (p as u64) + i % 3).await;
                    cpu.work(cpu.rand_below(60)).await;
                }
            });
        }
        m.run();
        let expect: u64 = (0..4u64)
            .map(|p| (0..20u64).map(|i| p + i % 3).sum::<u64>())
            .sum();
        assert_eq!(m.read_word(f.var()), expect);
    }

    /// A policy that replays a fixed script of decisions — used to force
    /// specific protocol routes regardless of observed contention.
    struct Scripted {
        script: Vec<Decision>,
        at: usize,
    }

    impl Policy for Scripted {
        fn decide(&mut self, _obs: &Observation) -> Decision {
            let d = self.script.get(self.at).copied().unwrap_or(Decision::Stay);
            self.at += 1;
            d
        }
    }

    /// Regression for the old binary-`Mode` API: a 3-protocol object
    /// must be able to express "switch from the queue-counter to the
    /// combining tree" as a first-class (ProtocolId -> ProtocolId)
    /// transition, visible in the instrumentation stream.
    #[test]
    fn three_protocol_switch_queue_to_tree_is_expressible() {
        let m = Machine::new(Config::default().nodes(8));
        let log = Rc::new(SwitchLog::new());
        let f = ReactiveFetchOp::builder(&m, 0)
            .max_procs(8)
            .policy(Scripted {
                // 1st observation: go TTS -> queue; 2nd: queue -> tree.
                script: vec![
                    Decision::SwitchTo(PROTO_QUEUE),
                    Decision::SwitchTo(PROTO_TREE),
                ],
                at: 0,
            })
            .instrument(log.clone())
            .build();
        for p in 0..8 {
            let cpu = m.cpu(p);
            let f = f.clone();
            m.spawn(p, async move {
                for _ in 0..12 {
                    f.fetch_add(&cpu, 1).await;
                    cpu.work(cpu.rand_below(50)).await;
                }
            });
        }
        m.run();
        assert_eq!(m.live_tasks(), 0);
        assert_eq!(m.read_word(f.var()), 96);
        let evs = log.events();
        assert_eq!(evs.len(), 2, "expected exactly the scripted switches");
        assert_eq!((evs[0].from, evs[0].to), (PROTO_TTS, PROTO_QUEUE));
        assert_eq!(
            (evs[1].from, evs[1].to),
            (PROTO_QUEUE, PROTO_TREE),
            "queue-counter -> combining-tree must be expressible"
        );
        assert_eq!(f.switches(), 2);
    }

    /// The generalized selector also supports routes the old API could
    /// not name at all: TTS straight to the tree, and tree straight back
    /// to TTS.
    #[test]
    fn direct_tts_tree_round_trip_is_expressible() {
        let m = Machine::new(Config::default().nodes(8));
        let log = Rc::new(SwitchLog::new());
        let f = ReactiveFetchOp::builder(&m, 0)
            .max_procs(8)
            .policy(Scripted {
                script: vec![
                    Decision::SwitchTo(PROTO_TREE),
                    Decision::Stay,
                    Decision::Stay,
                    Decision::SwitchTo(PROTO_TTS),
                ],
                at: 0,
            })
            .instrument(log.clone())
            .build();
        for p in 0..8 {
            let cpu = m.cpu(p);
            let f = f.clone();
            m.spawn(p, async move {
                for _ in 0..12 {
                    f.fetch_add(&cpu, 1).await;
                    cpu.work(cpu.rand_below(50)).await;
                }
            });
        }
        m.run();
        assert_eq!(m.live_tasks(), 0);
        assert_eq!(m.read_word(f.var()), 96);
        let evs = log.events();
        assert_eq!(evs.len(), 2);
        assert_eq!((evs[0].from, evs[0].to), (PROTO_TTS, PROTO_TREE));
        assert_eq!((evs[1].from, evs[1].to), (PROTO_TREE, PROTO_TTS));
    }
}
