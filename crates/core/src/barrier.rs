//! A reactive barrier built on the switching kernel — the "fifth
//! reactive object".
//!
//! The paper's protocol-selection argument applies to barriers exactly
//! as to locks and fetch-and-op: a **centralized sense-reversing
//! barrier** has minimal fixed cost but every arrival contends on one
//! counter line, while a **software combining arrival tree** bounds
//! sharing per line at `fanout` but pays a level of counter updates per
//! `log_f P`. This object selects between them at run time.
//!
//! It exists to demonstrate the switching-kernel architecture: the
//! whole mode-change machinery — registration, valid/invalid
//! bookkeeping, policy handling, commit, `SwitchEvent` emission — comes
//! from [`SwitchKernel`](crate::policy::SwitchKernel); this file contributes only the two arrival
//! protocols, a contention monitor (mean arrival-counter latency per
//! round), and ~30 lines of [`SwitchableObject`] hooks. Compare with
//! the ~600-line forks each new reactive object needed before the
//! kernel existed.
//!
//! # Consensus discipline
//!
//! The barrier's consensus object is the **round-completion token**:
//! the last arriver of a round holds it exclusively — every other
//! participant has arrived and is waiting on the sense word, touching
//! no arrival structure. Protocol changes are performed only at that
//! point, *before* the sense flip, so:
//!
//! * a participant can never execute an invalid arrival protocol — the
//!   mode hint it read at entry cannot change until after its own
//!   arrival is counted (the round cannot complete without it), making
//!   the dispatch hint exact rather than merely a hint;
//! * waiter migration is trivial — at the switch point the only waiters
//!   are sense-pollers, and the sense release serves them identically
//!   under either protocol (no waiter can be lost across a change).

use std::cell::Cell;
use std::rc::Rc;

use alewife_sim::{Addr, Cpu, Machine, WaitQueueId};
use sync_protocols::barrier::{ArrivalTree, BarrierCtx};
use sync_protocols::waiting::WaitStrategy;

use crate::policy::{
    Always, Instrument, Observation, Policy, ProtocolId, SimKernel, SwitchStyle, SwitchableObject,
};

/// Slot of the centralized sense-reversing protocol (cheap).
pub const PROTO_CENTRAL: ProtocolId = ProtocolId(0);
/// Slot of the combining arrival tree (scalable).
pub const PROTO_TREE: ProtocolId = ProtocolId(1);

const MODE_CENTRAL: u64 = PROTO_CENTRAL.0 as u64;

/// Mean arrival-counter latency (cycles) above which the central
/// counter is melting and the tree pays off.
pub const CENTRAL_LAT_LIMIT: u64 = 60;
/// Mean leaf-counter latency below which the tree's fixed cost is
/// wasted on an uncontended barrier.
pub const TREE_LAT_LOW: u64 = 45;
/// Consecutive calm tree rounds before proposing the central protocol.
pub const TREE_CALM_LIMIT: u64 = 3;

/// Builder for [`ReactiveBarrier`].
pub struct ReactiveBarrierBuilder<'m> {
    m: &'m Machine,
    home: usize,
    participants: usize,
    fanout: usize,
    policy: Box<dyn Policy>,
    sink: Option<Rc<dyn Instrument>>,
    initial: ProtocolId,
}

impl<'m> ReactiveBarrierBuilder<'m> {
    /// Arrival-tree fanout (processors sharing one counter line;
    /// default 4).
    pub fn fanout(mut self, f: usize) -> Self {
        self.fanout = f;
        self
    }

    /// Use the given switching policy (default: [`Always`]).
    pub fn policy(mut self, p: impl Policy + 'static) -> Self {
        self.policy = Box::new(p);
        self
    }

    /// Use an already-boxed policy (for `dyn Policy` plumbing).
    pub fn boxed_policy(mut self, p: Box<dyn Policy>) -> Self {
        self.policy = p;
        self
    }

    /// Report every committed protocol change to `sink`.
    pub fn instrument(mut self, sink: Rc<dyn Instrument>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Start in the given protocol ([`PROTO_CENTRAL`] by default).
    ///
    /// # Panics
    /// If `p` is not one of this barrier's two protocol slots.
    pub fn initial_protocol(mut self, p: ProtocolId) -> Self {
        assert!(
            p == PROTO_CENTRAL || p == PROTO_TREE,
            "reactive barrier has protocols {PROTO_CENTRAL} and {PROTO_TREE}, not {p}"
        );
        self.initial = p;
        self
    }

    /// Allocate and initialize the barrier.
    pub fn build(self) -> ReactiveBarrier {
        let m = self.m;
        let mut kernel = SimKernel::builder()
            .register(PROTO_CENTRAL, "central-sense", SwitchStyle::Handoff)
            .register(PROTO_TREE, "combining-tree", SwitchStyle::Handoff)
            .policy(self.policy)
            .initial(self.initial);
        if let Some(sink) = self.sink {
            kernel = kernel.sink(sink);
        }
        let count = m.alloc_on(self.home, 1);
        let sense = m.alloc_on(self.home, 1);
        let mode = m.alloc_on(self.home, 1);
        m.write_word(mode, self.initial.0 as u64);
        ReactiveBarrier {
            count,
            sense,
            mode,
            tree: ArrivalTree::new(m, self.participants, self.fanout),
            q: m.new_wait_queue(),
            participants: self.participants as u64,
            kernel: Rc::new(kernel.build()),
            round_lat: Rc::new(Cell::new(0)),
            calm_streak: Rc::new(Cell::new(0)),
        }
    }
}

/// A reactive barrier: centralized sense-reversing under light arrival
/// contention, combining arrival tree under heavy, switching at run
/// time through the shared [`SwitchKernel`](crate::policy::SwitchKernel). Cheap to clone; clones
/// share the barrier.
#[derive(Clone)]
pub struct ReactiveBarrier {
    count: Addr,
    sense: Addr,
    mode: Addr,
    tree: ArrivalTree,
    q: WaitQueueId,
    participants: u64,
    kernel: Rc<SimKernel>,
    /// Sum of this round's arrival-counter latencies (the monitor).
    round_lat: Rc<Cell<u64>>,
    calm_streak: Rc<Cell<u64>>,
}

impl std::fmt::Debug for ReactiveBarrier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactiveBarrier")
            .field("participants", &self.participants)
            .field("switches", &self.kernel.switches())
            .finish()
    }
}

impl ReactiveBarrier {
    /// Start building a reactive barrier for participants
    /// `0..participants` (who call [`ReactiveBarrier::wait`] from their
    /// own node), homed on `home`.
    pub fn builder(m: &Machine, home: usize, participants: usize) -> ReactiveBarrierBuilder<'_> {
        assert!(participants > 0, "barrier needs at least one participant");
        ReactiveBarrierBuilder {
            m,
            home,
            participants,
            fanout: 4,
            policy: Box::new(Always),
            sink: None,
            initial: PROTO_CENTRAL,
        }
    }

    /// Create with defaults (central protocol initially, [`Always`]
    /// policy, fanout 4).
    pub fn new(m: &Machine, home: usize, participants: usize) -> ReactiveBarrier {
        ReactiveBarrier::builder(m, home, participants).build()
    }

    /// Number of protocol changes performed so far.
    pub fn switches(&self) -> u64 {
        self.kernel.switches()
    }

    /// Enter the barrier; returns when all participants have arrived.
    ///
    /// The mode read here is exact, not a racy hint: this round cannot
    /// complete (and therefore cannot change protocols) before this
    /// very arrival is counted.
    pub async fn wait<W: WaitStrategy>(&self, cpu: &Cpu, ctx: &mut BarrierCtx, wait: &W) {
        let new_sense = 1 - ctx.local_sense();
        ctx.set_local_sense(new_sense);
        let last = if cpu.read(self.mode).await == MODE_CENTRAL {
            let t0 = cpu.now();
            let arrived = cpu.fetch_and_add(self.count, 1).await;
            self.round_lat.set(self.round_lat.get() + (cpu.now() - t0));
            if arrived == self.participants - 1 {
                // Complete the central protocol before any mode change.
                cpu.write(self.count, 0).await;
                self.finish_round(cpu, PROTO_CENTRAL).await;
                true
            } else {
                false
            }
        } else {
            let a = self.tree.arrive(cpu, cpu.node()).await;
            self.round_lat.set(self.round_lat.get() + a.leaf_latency);
            if a.winner {
                self.finish_round(cpu, PROTO_TREE).await;
                true
            } else {
                false
            }
        };
        if last {
            cpu.write(self.sense, new_sense).await;
            cpu.signal_all(self.q).await;
        } else {
            wait.wait_word(cpu, self.sense, self.q, move |v| v == new_sense)
                .await;
        }
    }

    /// Last-arriver monitoring + policy consultation, holding the
    /// round-completion token (every other participant waits on the
    /// sense word).
    async fn finish_round(&self, cpu: &Cpu, current: ProtocolId) {
        let avg = self.round_lat.take() / self.participants;
        let obs = if current == PROTO_CENTRAL {
            if avg > CENTRAL_LAT_LIMIT {
                let residual = ((avg - CENTRAL_LAT_LIMIT) * self.participants) as f64;
                Observation::suboptimal(PROTO_CENTRAL, PROTO_TREE, residual)
            } else {
                Observation::optimal(PROTO_CENTRAL)
            }
        } else if avg < TREE_LAT_LOW {
            let calm = self.calm_streak.get() + 1;
            self.calm_streak.set(calm);
            if calm > TREE_CALM_LIMIT {
                Observation::suboptimal(PROTO_TREE, PROTO_CENTRAL, 50.0 * self.participants as f64)
            } else {
                Observation::optimal(PROTO_TREE)
            }
        } else {
            self.calm_streak.set(0);
            Observation::optimal(PROTO_TREE)
        };
        if let Some(target) = self.kernel.observe(&obs) {
            self.kernel
                .switch(&BarrierSwitch { b: self }, cpu, current, target)
                .await;
        }
    }
}

/// The barrier's [`SwitchableObject`] hooks. Validation resets the
/// entering protocol's arrival counters; invalidation is a no-op
/// because the exiting protocol is quiescent at a round boundary (its
/// completion *is* the consensus token).
struct BarrierSwitch<'a> {
    b: &'a ReactiveBarrier,
}

impl SwitchableObject for BarrierSwitch<'_> {
    type Ctx = Cpu;

    async fn validate(&self, cpu: &Cpu, to: ProtocolId, _from: ProtocolId, _state: u64) {
        if to == PROTO_TREE {
            self.b.tree.reset(cpu).await;
        } else {
            cpu.write(self.b.count, 0).await;
        }
    }

    async fn invalidate(&self, _cpu: &Cpu, _from: ProtocolId, _to: ProtocolId) -> Option<u64> {
        // The exiting protocol is quiescent at a round boundary and the
        // round token is held exclusively: nothing to do, cannot lose.
        Some(0)
    }

    async fn publish_mode(&self, cpu: &Cpu, to: ProtocolId) {
        cpu.write(self.b.mode, to.0 as u64).await;
    }

    fn now(&self, cpu: &Cpu) -> u64 {
        cpu.now()
    }

    fn note_switch(&self, cpu: &Cpu, _from: ProtocolId, to: ProtocolId) {
        let name = if to == PROTO_TREE {
            "reactive_barrier.to_tree"
        } else {
            "reactive_barrier.to_central"
        };
        cpu.bump(name, 1);
    }

    fn reset_monitor(&self, _to: ProtocolId) {
        self.b.calm_streak.set(0);
        self.b.round_lat.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::SwitchLog;
    use alewife_sim::Config;
    use sync_protocols::waiting::AlwaysSpin;

    fn run_rounds(procs: usize, rounds: u64, bar_of: impl Fn(&Machine) -> ReactiveBarrier) -> u64 {
        let m = Machine::new(Config::default().nodes(procs));
        let bar = bar_of(&m);
        let acc = m.alloc_on(0, rounds);
        let check = m.alloc_on(if procs > 1 { 1 } else { 0 }, 1);
        for p in 0..procs {
            let cpu = m.cpu(p);
            let bar = bar.clone();
            m.spawn(p, async move {
                let mut ctx = BarrierCtx::default();
                for r in 0..rounds {
                    cpu.work(cpu.rand_below(300)).await;
                    cpu.fetch_and_add(acc.plus(r), 1).await;
                    bar.wait(&cpu, &mut ctx, &AlwaysSpin).await;
                    let v = cpu.read(acc.plus(r)).await;
                    if v != cpu.nodes() as u64 {
                        cpu.fetch_and_add(check, 1).await;
                    }
                }
            });
        }
        m.run();
        assert_eq!(m.live_tasks(), 0, "reactive barrier deadlock");
        assert_eq!(m.read_word(check), 0, "barrier released someone early");
        for r in 0..rounds {
            assert_eq!(m.read_word(acc.plus(r)), procs as u64);
        }
        bar.switches()
    }

    #[test]
    fn small_barrier_stays_central() {
        let switches = run_rounds(2, 10, |m| ReactiveBarrier::new(m, 0, 2));
        assert_eq!(switches, 0, "2 participants should never leave central");
    }

    #[test]
    fn single_participant() {
        run_rounds(1, 10, |m| ReactiveBarrier::new(m, 0, 1));
    }

    #[test]
    fn contended_barrier_switches_to_tree() {
        let m = Machine::new(Config::default().nodes(32));
        let log = Rc::new(SwitchLog::new());
        let bar = ReactiveBarrier::builder(&m, 0, 32)
            .instrument(log.clone())
            .build();
        let done = m.alloc_on(1, 1);
        for p in 0..32 {
            let cpu = m.cpu(p);
            let bar = bar.clone();
            m.spawn(p, async move {
                let mut ctx = BarrierCtx::default();
                for _ in 0..8 {
                    cpu.work(cpu.rand_below(100)).await;
                    bar.wait(&cpu, &mut ctx, &AlwaysSpin).await;
                }
                cpu.fetch_and_add(done, 1).await;
            });
        }
        m.run();
        assert_eq!(m.live_tasks(), 0);
        assert_eq!(m.read_word(done), 32);
        assert!(
            bar.switches() >= 1,
            "32-way arrivals should reach the tree; switches = 0"
        );
        let evs = log.events();
        assert_eq!(evs.len() as u64, bar.switches());
        assert_eq!((evs[0].from, evs[0].to), (PROTO_CENTRAL, PROTO_TREE));
        let st = m.stats();
        assert!(st.counter("reactive_barrier.to_tree") >= 1);
    }

    #[test]
    fn starts_in_tree_when_asked_and_falls_back() {
        // 2 participants starting in the tree: calm rounds must pull it
        // down to the central protocol.
        let switches = run_rounds(2, 12, |m| {
            ReactiveBarrier::builder(m, 0, 2)
                .initial_protocol(PROTO_TREE)
                .build()
        });
        assert!(switches >= 1, "calm tree should fall back to central");
    }

    #[test]
    #[should_panic(expected = "not P7")]
    fn rejects_unknown_initial_protocol() {
        let m = Machine::new(Config::default().nodes(2));
        let _ = ReactiveBarrier::builder(&m, 0, 2).initial_protocol(ProtocolId(7));
    }
}
