//! Two-phase waiting algorithms (Chapter 4).
//!
//! A two-phase waiting algorithm polls until the cost of polling reaches
//! `Lpoll`, then blocks (cost `B`). With `Lpoll = B` it is 2-competitive
//! against any adversary; with the tuned static choices of §4.5
//! (`Lpoll = 0.54·B` for exponential waits, `0.62·B` for uniform waits)
//! it approaches the on-line optimum of `e/(e-1) ≈ 1.58` against a
//! restricted adversary.
//!
//! [`SwitchSpin`] is the multithreaded-processor variant (§4.1):
//! the polling phase yields to other loaded contexts between polls, so
//! polling costs `t/β` instead of `t` and `Lpoll` buys a β-times longer
//! polling phase.

use alewife_sim::{Addr, Cpu, FullEmpty, WaitQueueId};
use sync_protocols::waiting::WaitStrategy;

/// Two-phase waiting: poll up to `lpoll` cycles, then block.
#[derive(Clone, Copy, Debug)]
pub struct TwoPhase {
    /// Maximum cycles spent polling before blocking (`Lpoll`).
    pub lpoll: u64,
}

impl TwoPhase {
    /// Two-phase waiting with an explicit polling limit.
    pub fn new(lpoll: u64) -> TwoPhase {
        TwoPhase { lpoll }
    }

    /// `Lpoll = α·B` for a machine whose blocking cost is `block_cost`.
    pub fn with_alpha(alpha: f64, block_cost: u64) -> TwoPhase {
        assert!(alpha >= 0.0);
        TwoPhase {
            lpoll: (alpha * block_cost as f64) as u64,
        }
    }

    /// The §4.5.1 optimum for exponential waits: `Lpoll = ln(e-1)·B`.
    pub fn optimal_exponential(block_cost: u64) -> TwoPhase {
        TwoPhase::with_alpha(0.5413, block_cost)
    }

    /// The §4.5.2 optimum for uniform waits: `Lpoll = 0.62·B`.
    pub fn optimal_uniform(block_cost: u64) -> TwoPhase {
        TwoPhase::with_alpha(0.62, block_cost)
    }
}

impl WaitStrategy for TwoPhase {
    async fn wait_word(
        &self,
        cpu: &Cpu,
        addr: Addr,
        q: WaitQueueId,
        pred: impl Fn(u64) -> bool + Clone + Unpin + 'static,
    ) -> u64 {
        // Phase 1: poll. (Spinning costs exactly the elapsed cycles.)
        let deadline = cpu.now() + self.lpoll;
        if let Some(v) = cpu.poll_until_deadline(addr, pred.clone(), deadline).await {
            return v;
        }
        // Phase 2: block until signalled, then re-check.
        loop {
            let v = cpu.read(addr).await;
            if pred(v) {
                return v;
            }
            cpu.block_on(q).await;
        }
    }

    async fn wait_full(&self, cpu: &Cpu, addr: Addr, q: WaitQueueId) -> u64 {
        let deadline = cpu.now() + self.lpoll;
        if let Some(v) = cpu.poll_until_full_deadline(addr, deadline).await {
            return v;
        }
        loop {
            if let FullEmpty::Full(v) = cpu.read_full(addr).await {
                return v;
            }
            cpu.block_on(q).await;
        }
    }
}

/// Switch-spinning (§4.1): a polling mechanism on a multithreaded node
/// that cycles through the other loaded contexts between polls; with `N`
/// contexts the effective polling cost is `t/N`. Falls back to plain
/// spinning when no peer thread is ready.
#[derive(Clone, Copy, Debug, Default)]
pub struct SwitchSpin;

impl WaitStrategy for SwitchSpin {
    async fn wait_word(
        &self,
        cpu: &Cpu,
        addr: Addr,
        _q: WaitQueueId,
        pred: impl Fn(u64) -> bool + Clone + Unpin + 'static,
    ) -> u64 {
        loop {
            let v = cpu.read(addr).await;
            if pred(v) {
                return v;
            }
            if !cpu.yield_now().await {
                // Nobody to switch to: read-poll until the line changes.
                let deadline = cpu.now() + 200;
                if let Some(v) = cpu.poll_until_deadline(addr, pred.clone(), deadline).await {
                    return v;
                }
            }
        }
    }

    async fn wait_full(&self, cpu: &Cpu, addr: Addr, _q: WaitQueueId) -> u64 {
        loop {
            if let FullEmpty::Full(v) = cpu.read_full(addr).await {
                return v;
            }
            if !cpu.yield_now().await {
                let deadline = cpu.now() + 200;
                if let Some(v) = cpu.poll_until_full_deadline(addr, deadline).await {
                    return v;
                }
            }
        }
    }
}

/// Two-phase switch-spinning: switch-spin until the *polling cost*
/// (elapsed / contexts) reaches `Lpoll`, then block — the waiting
/// algorithm Alewife's runtime uses on multithreaded nodes (§4.6).
#[derive(Clone, Copy, Debug)]
pub struct TwoPhaseSwitchSpin {
    /// Maximum polling *cost* before blocking.
    pub lpoll: u64,
}

impl WaitStrategy for TwoPhaseSwitchSpin {
    async fn wait_word(
        &self,
        cpu: &Cpu,
        addr: Addr,
        q: WaitQueueId,
        pred: impl Fn(u64) -> bool + Clone + Unpin + 'static,
    ) -> u64 {
        let beta = cpu.contexts().max(1) as u64;
        let deadline = cpu.now() + self.lpoll * beta;
        loop {
            let v = cpu.read(addr).await;
            if pred(v) {
                return v;
            }
            if cpu.now() >= deadline {
                break;
            }
            if !cpu.yield_now().await {
                cpu.poll_until_deadline(addr, pred.clone(), deadline).await;
            }
        }
        loop {
            let v = cpu.read(addr).await;
            if pred(v) {
                return v;
            }
            cpu.block_on(q).await;
        }
    }

    async fn wait_full(&self, cpu: &Cpu, addr: Addr, q: WaitQueueId) -> u64 {
        let beta = cpu.contexts().max(1) as u64;
        let deadline = cpu.now() + self.lpoll * beta;
        loop {
            if let FullEmpty::Full(v) = cpu.read_full(addr).await {
                return v;
            }
            if cpu.now() >= deadline {
                break;
            }
            if !cpu.yield_now().await {
                cpu.poll_until_full_deadline(addr, deadline).await;
            }
        }
        loop {
            if let FullEmpty::Full(v) = cpu.read_full(addr).await {
                return v;
            }
            cpu.block_on(q).await;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alewife_sim::{Config, CostModel, Machine};
    use sync_protocols::waiting::{AlwaysBlock, AlwaysSpin};

    /// One waiter, one producer who fills after `delay`; returns the
    /// waiter's completion time. (Not the machine drain time: a
    /// two-phase waiter that resolves in its polling phase leaves a
    /// stale deadline timer behind, which would inflate drain time.)
    fn one_wait<W: WaitStrategy>(w: W, delay: u64) -> u64 {
        let m = Machine::new(Config::default().nodes(2));
        let slot = m.alloc_on(0, 1);
        let q = m.new_wait_queue();
        let done = m.alloc_on(1, 1);
        let c0 = m.cpu(0);
        m.spawn(0, async move {
            let v = w.wait_full(&c0, slot, q).await;
            assert_eq!(v, 1);
            c0.write(done, c0.now()).await;
        });
        let c1 = m.cpu(1);
        m.spawn(1, async move {
            c1.work(delay).await;
            c1.write_fill(slot, 1).await;
            c1.signal_all(q).await;
        });
        m.run();
        assert_eq!(m.live_tasks(), 0, "two-phase deadlock");
        let done_at = m.read_word(done);
        assert!(done_at > 0, "waiter never completed");
        done_at
    }

    #[test]
    fn short_wait_resolves_in_polling_phase() {
        let b = CostModel::nwo().block_cost();
        // Wait shorter than Lpoll: should behave like spinning.
        let t_2p = one_wait(TwoPhase::new(b), 100);
        let t_spin = one_wait(AlwaysSpin, 100);
        assert!(
            t_2p <= t_spin + 50,
            "two-phase ({t_2p}) much slower than spin ({t_spin}) on short wait"
        );
    }

    #[test]
    fn long_wait_blocks() {
        let b = CostModel::nwo().block_cost();
        let delay = 20 * b;
        // On long waits two-phase completes like blocking (within the
        // polling phase + reload noise).
        let t_2p = one_wait(TwoPhase::new(b), delay);
        let t_block = one_wait(AlwaysBlock, delay);
        assert!(
            t_2p < t_block + 2 * b,
            "two-phase ({t_2p}) not close to block ({t_block}) on long wait"
        );
    }

    #[test]
    fn zero_lpoll_is_always_block() {
        let t = one_wait(TwoPhase::new(0), 2_000);
        let t_block = one_wait(AlwaysBlock, 2_000);
        assert!(t.abs_diff(t_block) < 100);
    }

    #[test]
    fn optimal_constructors() {
        let b = 465;
        assert_eq!(
            TwoPhase::optimal_exponential(b).lpoll,
            (0.5413 * 465.0) as u64
        );
        assert_eq!(TwoPhase::optimal_uniform(b).lpoll, (0.62 * 465.0) as u64);
    }

    #[test]
    fn two_phase_frees_processor_for_peer_thread() {
        // Node 0 runs the waiter AND a compute thread. With two-phase
        // waiting the waiter blocks after Lpoll and the compute thread
        // runs; with always-spin the compute thread starves until the
        // producer fills the slot.
        fn run<W: WaitStrategy>(w: W) -> u64 {
            let m = Machine::new(Config::default().nodes(2).contexts(2));
            let slot = m.alloc_on(1, 1);
            let q = m.new_wait_queue();
            let compute_done = m.alloc_on(0, 1);
            let c0a = m.cpu(0);
            m.spawn(0, async move {
                w.wait_full(&c0a, slot, q).await;
            });
            let c0b = m.cpu(0);
            m.spawn(0, async move {
                c0b.work(1_000).await;
                c0b.write(compute_done, c0b.now()).await;
            });
            let c1 = m.cpu(1);
            m.spawn(1, async move {
                c1.work(50_000).await;
                c1.write_fill(slot, 1).await;
                c1.signal_all(q).await;
            });
            m.run();
            assert_eq!(m.live_tasks(), 0);
            m.read_word(compute_done)
        }
        let done_2p = run(TwoPhase::new(465));
        let done_spin = run(AlwaysSpin);
        assert!(
            done_2p < 10_000,
            "compute thread should run once the waiter blocks ({done_2p})"
        );
        assert!(
            done_spin > 40_000,
            "spin-waiting should starve the compute thread ({done_spin})"
        );
    }

    #[test]
    fn switch_spin_overlaps_waiting_with_computation() {
        // Like above, but switch-spinning interleaves rather than blocks.
        let m = Machine::new(Config::default().nodes(2).contexts(2));
        let slot = m.alloc_on(1, 1);
        let q = m.new_wait_queue();
        let compute_done = m.alloc_on(0, 1);
        let c0a = m.cpu(0);
        m.spawn(0, async move {
            SwitchSpin.wait_full(&c0a, slot, q).await;
        });
        let c0b = m.cpu(0);
        m.spawn(0, async move {
            for _ in 0..100 {
                c0b.work(100).await;
                c0b.yield_now().await;
            }
            c0b.write(compute_done, c0b.now()).await;
        });
        let c1 = m.cpu(1);
        m.spawn(1, async move {
            c1.work(60_000).await;
            c1.write_fill(slot, 1).await;
            c1.signal_all(q).await;
        });
        m.run();
        assert_eq!(m.live_tasks(), 0);
        let done = m.read_word(compute_done);
        assert!(
            done > 0 && done < 60_000,
            "switch-spinning should let the compute thread finish early ({done})"
        );
    }

    #[test]
    fn two_phase_switch_spin_eventually_blocks() {
        let m = Machine::new(Config::default().nodes(2).contexts(2));
        let slot = m.alloc_on(1, 1);
        let q = m.new_wait_queue();
        let c0 = m.cpu(0);
        m.spawn(0, async move {
            let v = TwoPhaseSwitchSpin { lpoll: 465 }
                .wait_full(&c0, slot, q)
                .await;
            assert_eq!(v, 9);
        });
        let c1 = m.cpu(1);
        m.spawn(1, async move {
            c1.work(30_000).await;
            c1.write_fill(slot, 9).await;
            c1.signal_all(q).await;
        });
        m.run();
        assert_eq!(m.live_tasks(), 0);
    }
}
