//! The protocol-selection framework of §3.2: protocol objects, the
//! protocol manager, and C-serializability (Definitions 1 and 2).
//!
//! The practical reactive algorithms ([`crate::lock`],
//! [`crate::fetch_op`]) collapse this layering for performance (§3.2.6).
//! This module keeps the framework itself executable:
//!
//! * [`NaiveProtocolObject`] / [`NaiveManager`] implement the lock-based
//!   reference design of Figures 3.5-3.7 verbatim on the simulator —
//!   correct for *any* protocol, but with the serialization overheads
//!   §3.2.4 identifies.
//! * [`History`] records per-object operation intervals, and
//!   [`check_c_serial`] verifies Definition 1: at every object, each
//!   protocol-change operation (`Invalidate`/`Validate`) is totally
//!   ordered with respect to every other operation. We record the
//!   *serialization intervals* (the locked sections), whose C-seriality
//!   witnesses an equivalent legal C-serial history for the full
//!   request/response history.
//! * [`check_at_most_one_valid`] verifies the manager invariant of
//!   §3.2.3: at any time, at most one protocol object is valid.

use std::cell::RefCell;
use std::rc::Rc;

use alewife_sim::{Addr, Cpu, Machine};
use sync_protocols::spin::{Lock, TtsLock};

/// Operation kinds at a protocol object (Figure 3.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Execute the synchronization protocol.
    DoProtocol,
    /// Invalidate the object (first half of a protocol change).
    Invalidate,
    /// Update + validate the object (second half of a change).
    Validate,
}

/// One recorded operation interval at a protocol object.
#[derive(Clone, Copy, Debug)]
pub struct OpRecord {
    /// Issuing process (node id).
    pub proc_id: usize,
    /// Protocol object id.
    pub obj: usize,
    /// Operation kind.
    pub kind: OpKind,
    /// Serialization interval start (cycles).
    pub start: u64,
    /// Serialization interval end (cycles).
    pub end: u64,
    /// For `DoProtocol`: whether the execution found the object valid.
    pub valid_execution: bool,
}

/// A shared recorder of operation intervals.
#[derive(Clone, Debug, Default)]
pub struct History {
    records: Rc<RefCell<Vec<OpRecord>>>,
}

impl History {
    /// Create an empty history.
    pub fn new() -> History {
        History::default()
    }

    /// Append a record.
    pub fn record(&self, r: OpRecord) {
        self.records.borrow_mut().push(r);
    }

    /// Snapshot the records.
    pub fn snapshot(&self) -> Vec<OpRecord> {
        self.records.borrow().clone()
    }
}

/// Check Definition 1 (C-seriality): for each object, no
/// `Invalidate`/`Validate` interval may overlap any other operation's
/// interval on the same object.
pub fn check_c_serial(records: &[OpRecord]) -> Result<(), String> {
    for (i, a) in records.iter().enumerate() {
        if a.kind == OpKind::DoProtocol {
            continue;
        }
        for (j, b) in records.iter().enumerate() {
            if i == j || a.obj != b.obj {
                continue;
            }
            let disjoint = a.end <= b.start || b.end <= a.start;
            if !disjoint {
                return Err(format!(
                    "change op {a:?} overlaps {b:?} on object {}",
                    a.obj
                ));
            }
        }
    }
    Ok(())
}

/// Check the §3.2.3 manager invariant: replaying the change operations
/// in serialization order, at most one object is ever valid (given
/// `initial_valid`).
pub fn check_at_most_one_valid(
    records: &[OpRecord],
    objects: usize,
    initial_valid: usize,
) -> Result<(), String> {
    let mut changes: Vec<&OpRecord> = records
        .iter()
        .filter(|r| r.kind != OpKind::DoProtocol)
        .collect();
    changes.sort_by_key(|r| r.start);
    let mut valid = vec![false; objects];
    valid[initial_valid] = true;
    for c in changes {
        match c.kind {
            OpKind::Invalidate => valid[c.obj] = false,
            OpKind::Validate => {
                valid[c.obj] = true;
                let count = valid.iter().filter(|&&v| v).count();
                if count > 1 {
                    return Err(format!(
                        "{count} objects valid after {c:?} (invariant: ≤ 1)"
                    ));
                }
            }
            OpKind::DoProtocol => unreachable!(),
        }
    }
    Ok(())
}

/// The naive lock-based protocol object of Figure 3.7, specialized to a
/// counter protocol (the protocol state is one word; `RunProtocol` adds
/// a delta; `UpdateProtocol` copies the state in).
#[derive(Clone)]
pub struct NaiveProtocolObject {
    /// Object id for history records.
    pub id: usize,
    lock: TtsLock,
    valid: Addr,
    state: Addr,
    history: History,
    /// Cycles `RunProtocol` busies the processor (models protocol work).
    work: u64,
}

impl NaiveProtocolObject {
    /// Allocate a protocol object homed on `home`.
    pub fn new(
        m: &Machine,
        home: usize,
        id: usize,
        initially_valid: bool,
        work: u64,
        history: History,
    ) -> NaiveProtocolObject {
        let valid = m.alloc_on(home, 1);
        m.write_word(valid, initially_valid as u64);
        NaiveProtocolObject {
            id,
            lock: TtsLock::new(m, home, 64),
            valid,
            state: m.alloc_on(home, 1),
            history,
            work,
        }
    }

    /// `DoProtocol` (Figure 3.7): run the protocol under the object
    /// lock; returns `None` if the object was invalid.
    pub async fn do_protocol(&self, cpu: &Cpu, delta: u64) -> Option<u64> {
        self.lock.acquire(cpu).await;
        let t0 = cpu.now();
        let valid = cpu.read(self.valid).await == 1;
        let result = if valid {
            let old = cpu.read(self.state).await;
            cpu.work(self.work).await;
            cpu.write(self.state, old.wrapping_add(delta)).await;
            Some(old)
        } else {
            None
        };
        let t1 = cpu.now();
        self.lock.release(cpu, ()).await;
        self.history.record(OpRecord {
            proc_id: cpu.node(),
            obj: self.id,
            kind: OpKind::DoProtocol,
            start: t0,
            end: t1,
            valid_execution: valid,
        });
        result
    }

    /// `Invalidate` (Figure 3.7): returns the captured state if the
    /// object was valid (so the manager can transfer it), else `None`.
    pub async fn invalidate(&self, cpu: &Cpu) -> Option<u64> {
        self.lock.acquire(cpu).await;
        let t0 = cpu.now();
        let was_valid = cpu.read(self.valid).await == 1;
        let state = if was_valid {
            cpu.write(self.valid, 0).await;
            Some(cpu.read(self.state).await)
        } else {
            None
        };
        let t1 = cpu.now();
        self.lock.release(cpu, ()).await;
        self.history.record(OpRecord {
            proc_id: cpu.node(),
            obj: self.id,
            kind: OpKind::Invalidate,
            start: t0,
            end: t1,
            valid_execution: was_valid,
        });
        state
    }

    /// `Validate` (Figure 3.7): `UpdateProtocol` (copy the transferred
    /// state in) and mark valid.
    pub async fn validate(&self, cpu: &Cpu, state: u64) {
        self.lock.acquire(cpu).await;
        let t0 = cpu.now();
        if cpu.read(self.valid).await == 0 {
            cpu.write(self.state, state).await;
            cpu.write(self.valid, 1).await;
        }
        let t1 = cpu.now();
        self.lock.release(cpu, ()).await;
        self.history.record(OpRecord {
            proc_id: cpu.node(),
            obj: self.id,
            kind: OpKind::Validate,
            start: t0,
            end: t1,
            valid_execution: true,
        });
    }

    /// `IsValid` (unlocked hint read, as in Figure 3.7).
    pub async fn is_valid(&self, cpu: &Cpu) -> bool {
        cpu.read(self.valid).await == 1
    }
}

/// The protocol manager of Figure 3.6 over two protocol objects.
#[derive(Clone)]
pub struct NaiveManager {
    /// Protocol object 1.
    pub p1: NaiveProtocolObject,
    /// Protocol object 2.
    pub p2: NaiveProtocolObject,
}

impl NaiveManager {
    /// Build a manager over a pair of counter protocols; protocol 1
    /// starts valid. `work1`/`work2` are the protocols' per-op costs.
    pub fn new(m: &Machine, home: usize, work1: u64, work2: u64, history: History) -> NaiveManager {
        NaiveManager {
            p1: NaiveProtocolObject::new(m, home, 0, true, work1, history.clone()),
            p2: NaiveProtocolObject::new(m, home, 1, false, work2, history),
        }
    }

    /// `DoSynchOp` (Figure 3.6): loop until a valid protocol executes.
    pub async fn do_synch_op(&self, cpu: &Cpu, delta: u64) -> u64 {
        loop {
            if self.p1.is_valid(cpu).await {
                if let Some(v) = self.p1.do_protocol(cpu, delta).await {
                    return v;
                }
            } else if self.p2.is_valid(cpu).await {
                if let Some(v) = self.p2.do_protocol(cpu, delta).await {
                    return v;
                }
            }
        }
    }

    /// `DoChange` (Figure 3.6): invalidate whichever protocol is valid
    /// and validate the other, transferring the state.
    pub async fn do_change(&self, cpu: &Cpu) {
        if let Some(state) = self.p1.invalidate(cpu).await {
            self.p2.validate(cpu, state).await;
        } else if let Some(state) = self.p2.invalidate(cpu).await {
            self.p1.validate(cpu, state).await;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alewife_sim::Config;

    #[test]
    fn naive_manager_counts_correctly_under_changes() {
        let m = Machine::new(Config::default().nodes(8));
        let history = History::new();
        let mgr = NaiveManager::new(&m, 0, 20, 60, history.clone());
        for p in 0..7 {
            let cpu = m.cpu(p);
            let mgr = mgr.clone();
            m.spawn(p, async move {
                for _ in 0..20 {
                    mgr.do_synch_op(&cpu, 1).await;
                    cpu.work(cpu.rand_below(150)).await;
                }
            });
        }
        // A dedicated changer flips protocols repeatedly (§3.2.1 models
        // changes as generated by an internal process).
        {
            let cpu = m.cpu(7);
            let mgr = mgr.clone();
            m.spawn(7, async move {
                for _ in 0..10 {
                    cpu.work(1_000).await;
                    mgr.do_change(&cpu).await;
                }
            });
        }
        m.run();
        assert_eq!(m.live_tasks(), 0, "framework deadlock");
        // All 140 increments must have landed in exactly one of the two
        // protocol states (whichever is currently valid holds the total).
        let recs = history.snapshot();
        let total_valid_ops = recs
            .iter()
            .filter(|r| r.kind == OpKind::DoProtocol && r.valid_execution)
            .count();
        assert_eq!(total_valid_ops, 140, "an op was lost or double-counted");
    }

    #[test]
    fn histories_are_c_serial() {
        let m = Machine::new(Config::default().nodes(6));
        let history = History::new();
        let mgr = NaiveManager::new(&m, 0, 10, 30, history.clone());
        for p in 0..5 {
            let cpu = m.cpu(p);
            let mgr = mgr.clone();
            m.spawn(p, async move {
                for _ in 0..15 {
                    mgr.do_synch_op(&cpu, 1).await;
                    cpu.work(cpu.rand_below(100)).await;
                }
            });
        }
        {
            let cpu = m.cpu(5);
            let mgr = mgr.clone();
            m.spawn(5, async move {
                for _ in 0..6 {
                    cpu.work(800).await;
                    mgr.do_change(&cpu).await;
                }
            });
        }
        m.run();
        assert_eq!(m.live_tasks(), 0);
        let recs = history.snapshot();
        check_c_serial(&recs).expect("history not C-serial");
        check_at_most_one_valid(&recs, 2, 0).expect("validity invariant broken");
    }

    #[test]
    fn checker_rejects_overlapping_change() {
        let bad = vec![
            OpRecord {
                proc_id: 0,
                obj: 0,
                kind: OpKind::DoProtocol,
                start: 0,
                end: 100,
                valid_execution: true,
            },
            OpRecord {
                proc_id: 1,
                obj: 0,
                kind: OpKind::Invalidate,
                start: 50,
                end: 150,
                valid_execution: true,
            },
        ];
        assert!(check_c_serial(&bad).is_err());
    }

    #[test]
    fn checker_accepts_overlapping_protocol_executions() {
        // Concurrent DoProtocol executions are explicitly allowed
        // (that is the whole point of C-serial vs serial, §3.2.5).
        let ok = vec![
            OpRecord {
                proc_id: 0,
                obj: 0,
                kind: OpKind::DoProtocol,
                start: 0,
                end: 100,
                valid_execution: true,
            },
            OpRecord {
                proc_id: 1,
                obj: 0,
                kind: OpKind::DoProtocol,
                start: 50,
                end: 150,
                valid_execution: true,
            },
        ];
        assert!(check_c_serial(&ok).is_ok());
    }

    #[test]
    fn checker_allows_changes_on_different_objects() {
        // H3 of Figure 3.8: a change on x may overlap an op on y.
        let ok = vec![
            OpRecord {
                proc_id: 0,
                obj: 0,
                kind: OpKind::Invalidate,
                start: 0,
                end: 100,
                valid_execution: true,
            },
            OpRecord {
                proc_id: 1,
                obj: 1,
                kind: OpKind::DoProtocol,
                start: 50,
                end: 150,
                valid_execution: true,
            },
        ];
        assert!(check_c_serial(&ok).is_ok());
    }

    #[test]
    fn validity_checker_detects_double_valid() {
        let bad = vec![
            OpRecord {
                proc_id: 0,
                obj: 1,
                kind: OpKind::Validate,
                start: 0,
                end: 10,
                valid_execution: true,
            },
            // Object 0 was initially valid and never invalidated.
        ];
        assert!(check_at_most_one_valid(&bad, 2, 0).is_err());
    }
}
