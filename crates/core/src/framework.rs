//! The protocol-selection framework of §3.2: the naive lock-based
//! reference design, plus the kernel's cross-object oracle.
//!
//! The practical reactive algorithms ([`crate::lock`],
//! [`crate::fetch_op`]) collapse this layering for performance (§3.2.6)
//! and run their mode changes through the shared
//! [`SwitchKernel`](crate::policy::SwitchKernel). This module keeps the
//! framework itself executable:
//!
//! * [`NaiveProtocolObject`] / [`NaiveManager`] implement the lock-based
//!   reference design of Figures 3.5-3.7 verbatim on the simulator —
//!   correct for *any* protocol, but with the serialization overheads
//!   §3.2.4 identifies.
//! * [`History`] records per-object operation intervals, and the §3.2
//!   checkers — re-exported from [`reactive_api::oracle`], where they
//!   double as the **kernel's cross-object oracle** — verify them:
//!   [`check_c_serial`] (Definition 1: every protocol-change operation
//!   is totally ordered with respect to every other operation at its
//!   object) and [`check_at_most_one_valid`] (§3.2.3: at any time, at
//!   most one protocol object is valid). We record the *serialization
//!   intervals* (the locked sections), whose C-seriality witnesses an
//!   equivalent legal C-serial history for the full request/response
//!   history.
//! * [`switch_events_to_records`] lowers any kernel commit log into the
//!   same record format, so every kernel-built reactive object — the
//!   sim lock/fetch-op/MP objects, the barrier, the native lock — is
//!   checked against the framework's correctness conditions in tests
//!   (`crates/core/tests/kernel_oracle.rs`,
//!   `crates/native/tests/kernel_oracle.rs`).

use std::cell::RefCell;
use std::rc::Rc;

use alewife_sim::{Addr, Cpu, Machine};
use sync_protocols::spin::{Lock, TtsLock};

pub use reactive_api::oracle::{
    check_at_most_one_valid, check_c_serial, check_switch_history, switch_events_to_records,
    OpKind, OpRecord,
};

/// A shared recorder of operation intervals.
#[derive(Clone, Debug, Default)]
pub struct History {
    records: Rc<RefCell<Vec<OpRecord>>>,
}

impl History {
    /// Create an empty history.
    pub fn new() -> History {
        History::default()
    }

    /// Append a record.
    pub fn record(&self, r: OpRecord) {
        self.records.borrow_mut().push(r);
    }

    /// Snapshot the records.
    pub fn snapshot(&self) -> Vec<OpRecord> {
        self.records.borrow().clone()
    }
}

/// The naive lock-based protocol object of Figure 3.7, specialized to a
/// counter protocol (the protocol state is one word; `RunProtocol` adds
/// a delta; `UpdateProtocol` copies the state in).
#[derive(Clone)]
pub struct NaiveProtocolObject {
    /// Object id for history records.
    pub id: usize,
    lock: TtsLock,
    valid: Addr,
    state: Addr,
    history: History,
    /// Cycles `RunProtocol` busies the processor (models protocol work).
    work: u64,
}

impl NaiveProtocolObject {
    /// Allocate a protocol object homed on `home`.
    pub fn new(
        m: &Machine,
        home: usize,
        id: usize,
        initially_valid: bool,
        work: u64,
        history: History,
    ) -> NaiveProtocolObject {
        let valid = m.alloc_on(home, 1);
        m.write_word(valid, initially_valid as u64);
        NaiveProtocolObject {
            id,
            lock: TtsLock::new(m, home, 64),
            valid,
            state: m.alloc_on(home, 1),
            history,
            work,
        }
    }

    /// `DoProtocol` (Figure 3.7): run the protocol under the object
    /// lock; returns `None` if the object was invalid.
    pub async fn do_protocol(&self, cpu: &Cpu, delta: u64) -> Option<u64> {
        self.lock.acquire(cpu).await;
        let t0 = cpu.now();
        let valid = cpu.read(self.valid).await == 1;
        let result = if valid {
            let old = cpu.read(self.state).await;
            cpu.work(self.work).await;
            cpu.write(self.state, old.wrapping_add(delta)).await;
            Some(old)
        } else {
            None
        };
        let t1 = cpu.now();
        self.lock.release(cpu, ()).await;
        self.history.record(OpRecord {
            proc_id: cpu.node(),
            obj: self.id,
            kind: OpKind::DoProtocol,
            start: t0,
            end: t1,
            valid_execution: valid,
        });
        result
    }

    /// `Invalidate` (Figure 3.7): returns the captured state if the
    /// object was valid (so the manager can transfer it), else `None`.
    pub async fn invalidate(&self, cpu: &Cpu) -> Option<u64> {
        self.lock.acquire(cpu).await;
        let t0 = cpu.now();
        let was_valid = cpu.read(self.valid).await == 1;
        let state = if was_valid {
            cpu.write(self.valid, 0).await;
            Some(cpu.read(self.state).await)
        } else {
            None
        };
        let t1 = cpu.now();
        self.lock.release(cpu, ()).await;
        self.history.record(OpRecord {
            proc_id: cpu.node(),
            obj: self.id,
            kind: OpKind::Invalidate,
            start: t0,
            end: t1,
            valid_execution: was_valid,
        });
        state
    }

    /// `Validate` (Figure 3.7): `UpdateProtocol` (copy the transferred
    /// state in) and mark valid.
    pub async fn validate(&self, cpu: &Cpu, state: u64) {
        self.lock.acquire(cpu).await;
        let t0 = cpu.now();
        if cpu.read(self.valid).await == 0 {
            cpu.write(self.state, state).await;
            cpu.write(self.valid, 1).await;
        }
        let t1 = cpu.now();
        self.lock.release(cpu, ()).await;
        self.history.record(OpRecord {
            proc_id: cpu.node(),
            obj: self.id,
            kind: OpKind::Validate,
            start: t0,
            end: t1,
            valid_execution: true,
        });
    }

    /// `IsValid` (unlocked hint read, as in Figure 3.7).
    pub async fn is_valid(&self, cpu: &Cpu) -> bool {
        cpu.read(self.valid).await == 1
    }
}

/// The protocol manager of Figure 3.6 over two protocol objects.
#[derive(Clone)]
pub struct NaiveManager {
    /// Protocol object 1.
    pub p1: NaiveProtocolObject,
    /// Protocol object 2.
    pub p2: NaiveProtocolObject,
}

impl NaiveManager {
    /// Build a manager over a pair of counter protocols; protocol 1
    /// starts valid. `work1`/`work2` are the protocols' per-op costs.
    pub fn new(m: &Machine, home: usize, work1: u64, work2: u64, history: History) -> NaiveManager {
        NaiveManager {
            p1: NaiveProtocolObject::new(m, home, 0, true, work1, history.clone()),
            p2: NaiveProtocolObject::new(m, home, 1, false, work2, history),
        }
    }

    /// `DoSynchOp` (Figure 3.6): loop until a valid protocol executes.
    pub async fn do_synch_op(&self, cpu: &Cpu, delta: u64) -> u64 {
        loop {
            if self.p1.is_valid(cpu).await {
                if let Some(v) = self.p1.do_protocol(cpu, delta).await {
                    return v;
                }
            } else if self.p2.is_valid(cpu).await {
                if let Some(v) = self.p2.do_protocol(cpu, delta).await {
                    return v;
                }
            }
        }
    }

    /// `DoChange` (Figure 3.6): invalidate whichever protocol is valid
    /// and validate the other, transferring the state.
    pub async fn do_change(&self, cpu: &Cpu) {
        if let Some(state) = self.p1.invalidate(cpu).await {
            self.p2.validate(cpu, state).await;
        } else if let Some(state) = self.p2.invalidate(cpu).await {
            self.p1.validate(cpu, state).await;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alewife_sim::Config;

    #[test]
    fn naive_manager_counts_correctly_under_changes() {
        let m = Machine::new(Config::default().nodes(8));
        let history = History::new();
        let mgr = NaiveManager::new(&m, 0, 20, 60, history.clone());
        for p in 0..7 {
            let cpu = m.cpu(p);
            let mgr = mgr.clone();
            m.spawn(p, async move {
                for _ in 0..20 {
                    mgr.do_synch_op(&cpu, 1).await;
                    cpu.work(cpu.rand_below(150)).await;
                }
            });
        }
        // A dedicated changer flips protocols repeatedly (§3.2.1 models
        // changes as generated by an internal process).
        {
            let cpu = m.cpu(7);
            let mgr = mgr.clone();
            m.spawn(7, async move {
                for _ in 0..10 {
                    cpu.work(1_000).await;
                    mgr.do_change(&cpu).await;
                }
            });
        }
        m.run();
        assert_eq!(m.live_tasks(), 0, "framework deadlock");
        // All 140 increments must have landed in exactly one of the two
        // protocol states (whichever is currently valid holds the total).
        let recs = history.snapshot();
        let total_valid_ops = recs
            .iter()
            .filter(|r| r.kind == OpKind::DoProtocol && r.valid_execution)
            .count();
        assert_eq!(total_valid_ops, 140, "an op was lost or double-counted");
    }

    #[test]
    fn histories_are_c_serial() {
        let m = Machine::new(Config::default().nodes(6));
        let history = History::new();
        let mgr = NaiveManager::new(&m, 0, 10, 30, history.clone());
        for p in 0..5 {
            let cpu = m.cpu(p);
            let mgr = mgr.clone();
            m.spawn(p, async move {
                for _ in 0..15 {
                    mgr.do_synch_op(&cpu, 1).await;
                    cpu.work(cpu.rand_below(100)).await;
                }
            });
        }
        {
            let cpu = m.cpu(5);
            let mgr = mgr.clone();
            m.spawn(5, async move {
                for _ in 0..6 {
                    cpu.work(800).await;
                    mgr.do_change(&cpu).await;
                }
            });
        }
        m.run();
        assert_eq!(m.live_tasks(), 0);
        let recs = history.snapshot();
        check_c_serial(&recs).expect("history not C-serial");
        check_at_most_one_valid(&recs, 2, 0).expect("validity invariant broken");
    }

    // The basic accept/reject cases of the checkers are unit-tested
    // next to their implementation in `reactive_api::oracle`; here we
    // keep the case that depends on the multi-object framing.
    #[test]
    fn checker_allows_changes_on_different_objects() {
        // H3 of Figure 3.8: a change on x may overlap an op on y.
        let ok = vec![
            OpRecord {
                proc_id: 0,
                obj: 0,
                kind: OpKind::Invalidate,
                start: 0,
                end: 100,
                valid_execution: true,
            },
            OpRecord {
                proc_id: 1,
                obj: 1,
                kind: OpKind::DoProtocol,
                start: 50,
                end: 150,
                valid_execution: true,
            },
        ];
        assert!(check_c_serial(&ok).is_ok());
    }
}
