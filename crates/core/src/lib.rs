//! # reactive-core — reactive synchronization algorithms
//!
//! The paper's contribution (Lim & Agarwal, ASPLOS '94; Lim's MIT thesis,
//! 1994): synchronization algorithms that *select their protocol and
//! waiting mechanism at run time* in response to observed conditions,
//! while staying within a constant factor of the best static choice.
//!
//! * [`policy`] — when to switch protocols (§3.4): re-exports the
//!   shared [`reactive_api`] surface (the [`Policy`] trait with
//!   switch-immediately, 3-competitive, and hysteresis impls; protocol
//!   ids; switch-event instrumentation) plus the simulator-side
//!   [`policy::SimKernel`] — the switching kernel every reactive
//!   object here embeds and routes its mode changes through. All
//!   reactive objects are constructed through builders
//!   (`ReactiveLock::builder(&m, 0).policy(..).instrument(..)`).
//! * [`lock`] — the reactive spin lock (§3.3.1, Figures 3.27-3.29):
//!   dynamically selects between test-and-test-and-set and the MCS queue
//!   lock, using the lock words themselves as consensus objects (an
//!   invalid sub-lock is left permanently busy, so the mode variable is
//!   only a hint and correctness never depends on it).
//! * [`fetch_op`] — the reactive fetch-and-op (§3.3.2, Appendix C):
//!   selects among a TTS-lock-protected counter, a queue-lock-protected
//!   counter, and a software combining tree.
//! * [`framework`] — the protocol-object framework of §3.2: protocol
//!   objects, the protocol manager, and a C-serializability checker used
//!   to validate histories in tests.
//! * [`waiting`] — two-phase waiting algorithms (Chapter 4): poll up to
//!   `Lpoll`, then block; plus switch-spinning variants for
//!   multithreaded nodes.
//! * [`mp`] — reactive selection between shared-memory and
//!   message-passing protocols (§3.6).
//! * [`robust`] — the robust reactive lock: run-time selection between
//!   an abortable MCS queue and a crash-recoverable Peterson tree,
//!   with crash-driven switching and journal-backed mode-change
//!   recovery (the fault-injection companion to [`lock`]).

#![deny(missing_docs)]

pub mod barrier;
pub mod fetch_op;
pub mod framework;
pub mod lock;
pub mod mp;
pub mod policy;
pub mod robust;
pub mod waiting;

pub use barrier::ReactiveBarrier;
pub use fetch_op::ReactiveFetchOp;
pub use lock::ReactiveLock;
pub use policy::{
    Always, Competitive3, Decision, Hysteresis, Instrument, Observation, Policy, ProtocolId,
    SwitchEvent, SwitchLog,
};
pub use robust::{RobustLock, RobustToken};
pub use waiting::TwoPhase;
