//! The **robust reactive lock**: run-time selection between an
//! abortable queue lock (cheap, deadline-capable, but wedged by a
//! holder crash) and a crash-recoverable mutex (every passage survives
//! kills, at `O(log n)` RMR cost), driven by the switching kernel.
//!
//! The monitor watches the machine's fault history through one NVM
//! word: the per-node recovery routine ([`RobustLock::recover`]) bumps
//! a crash counter, and
//!
//! * in **abortable** mode, a grant that observes new crashes reports
//!   the protocol suboptimal (a future crash of a holder would wedge
//!   the MCS queue) and the holder switches to the recoverable
//!   protocol on release;
//! * in **recoverable** mode, a long crash-free streak of passages
//!   reports the `O(log n)` passages as overpriced and the holder
//!   switches back.
//!
//! Both mode changes run through [`crate::policy::SimKernel`] with the
//! Handoff discipline: only the current holder switches, so changes are
//! C-serialized against all passages. Validity lives in two NVM words
//! (at most one set); a process that wins a sub-lock re-checks its
//! validity word and bails out to dispatch if it won a dead protocol —
//! the analogue of the reactive spin lock's pinned-busy trick for
//! sub-locks that cannot be pinned. The kernel's write-ahead journal
//! (modelled as NVM) makes a crash *during* the transaction repairable:
//! [`RobustLock::recover`] runs [`SwitchKernel::recover`] through the
//! same hooks, which either rolls the NVM validity words back or
//! completes the transition — idempotently.
//!
//! Deadlines: honored by the abortable protocol. The recoverable
//! protocol trades abortability for crash-tolerance, so in recoverable
//! mode a deadline is ignored and the acquire blocks until granted —
//! the cross-protocol price §3.2 calls "the semantics of the protocol
//! in force".
//!
//! [`SwitchKernel::recover`]: reactive_api::SwitchKernel::recover

use std::cell::Cell;
use std::rc::Rc;

use alewife_sim::{Addr, Cpu, Machine};
use sync_protocols::abortable::{AbortableMcsLock, Acquired};
use sync_protocols::recover::{RecoverableMutex, Recovery};

use crate::policy::{
    Always, Instrument, Observation, Policy, ProtocolId, SimKernel, SwitchStyle, SwitchableObject,
};
use reactive_api::SwitchRecovery;

/// Slot of the abortable MCS protocol (cheap, deadline-capable).
pub const PROTO_ABORTABLE: ProtocolId = ProtocolId(0);
/// Slot of the crash-recoverable Peterson-tree protocol.
pub const PROTO_RECOVERABLE: ProtocolId = ProtocolId(1);

/// Crash-free passages in recoverable mode before the monitor calls the
/// crash-tolerance overpriced.
pub const CALM_LIMIT: u64 = 8;

/// Residual cost (cycles) of serving a passage with the recoverable
/// protocol when no crashes are occurring (`O(log n)` tree climb vs one
/// queue handoff).
pub const RECOVERABLE_RESIDUAL: f64 = 400.0;

/// Residual cost charged per observed crash while in abortable mode
/// (a wedged queue costs a full recovery epoch).
pub const CRASH_RESIDUAL: f64 = 5_000.0;

/// What [`RobustLock::acquire`] returned with a grant; pass it back to
/// [`RobustLock::release`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RobustToken {
    proto: ProtocolId,
    /// Queue node when held via the abortable protocol.
    qnode: Option<Addr>,
    /// Switch target the monitor decided on, performed at release.
    switch_to: Option<ProtocolId>,
}

/// The robust reactive lock. Cheap to clone; clones share the lock.
#[derive(Clone)]
pub struct RobustLock {
    abortable: AbortableMcsLock,
    recoverable: RecoverableMutex,
    /// Two NVM validity words (at most one is 1).
    valid: Addr,
    /// NVM mode hint.
    mode: Addr,
    /// NVM crash counter, bumped by each node recovery.
    crashes: Addr,
    kernel: Rc<SimKernel>,
    /// Crash count already reacted to by the monitor.
    seen_crashes: Rc<Cell<u64>>,
    /// Crash-free passages while in recoverable mode.
    calm_streak: Rc<Cell<u64>>,
}

impl std::fmt::Debug for RobustLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RobustLock")
            .field("valid", &self.valid)
            .field("mode", &self.mode)
            .finish()
    }
}

/// Builder for [`RobustLock`].
pub struct RobustLockBuilder<'m> {
    m: &'m Machine,
    home: usize,
    procs: usize,
    policy: Box<dyn Policy>,
    sink: Option<Rc<dyn Instrument>>,
    initial: ProtocolId,
}

impl<'m> RobustLockBuilder<'m> {
    /// Use the given switching policy (default: [`Always`]).
    pub fn policy(mut self, p: impl Policy + 'static) -> Self {
        self.policy = Box::new(p);
        self
    }

    /// Report every committed protocol change to `sink`.
    pub fn instrument(mut self, sink: Rc<dyn Instrument>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Start in the given protocol ([`PROTO_ABORTABLE`] by default) —
    /// crash-prone deployments start recoverable.
    ///
    /// # Panics
    /// If `p` is not one of the two protocol slots.
    pub fn initial_protocol(mut self, p: ProtocolId) -> Self {
        assert!(
            p == PROTO_ABORTABLE || p == PROTO_RECOVERABLE,
            "robust lock has protocols {PROTO_ABORTABLE} and {PROTO_RECOVERABLE}, not {p}"
        );
        self.initial = p;
        self
    }

    /// Allocate and initialize (the initial protocol's validity word
    /// set, the other clear).
    pub fn build(self) -> RobustLock {
        let m = self.m;
        let valid = m.alloc_on(self.home, 2);
        let mode = m.alloc_on(self.home, 1);
        let crashes = m.alloc_on(self.home, 1);
        m.write_word(valid.plus(self.initial.index() as u64), 1);
        m.write_word(mode, self.initial.0 as u64);
        let mut kernel = SimKernel::builder()
            .register(PROTO_ABORTABLE, "abortable-mcs", SwitchStyle::Handoff)
            .register(PROTO_RECOVERABLE, "recoverable-tree", SwitchStyle::Handoff)
            .policy(self.policy)
            .initial(self.initial);
        if let Some(sink) = self.sink {
            kernel = kernel.sink(sink);
        }
        RobustLock {
            abortable: AbortableMcsLock::new(m, self.home, self.procs),
            recoverable: RecoverableMutex::new(m, self.procs),
            valid,
            mode,
            crashes,
            kernel: Rc::new(kernel.build()),
            seen_crashes: Rc::new(Cell::new(0)),
            calm_streak: Rc::new(Cell::new(0)),
        }
    }
}

impl RobustLock {
    /// Start building a robust lock for `procs` processes, control
    /// words homed on `home`.
    pub fn builder(m: &Machine, home: usize, procs: usize) -> RobustLockBuilder<'_> {
        RobustLockBuilder {
            m,
            home,
            procs,
            policy: Box::new(Always),
            sink: None,
            initial: PROTO_ABORTABLE,
        }
    }

    /// Build with the defaults (abortable initial protocol, [`Always`]
    /// policy).
    pub fn new(m: &Machine, home: usize, procs: usize) -> RobustLock {
        RobustLock::builder(m, home, procs).build()
    }

    /// Number of protocol changes committed so far.
    pub fn switches(&self) -> u64 {
        self.kernel.switches()
    }

    /// The currently valid protocol according to the kernel.
    pub fn current(&self) -> ProtocolId {
        self.kernel.current()
    }

    fn valid_word(&self, p: ProtocolId) -> Addr {
        self.valid.plus(p.index() as u64)
    }

    /// Acquire as process `p` with an absolute-cycle `deadline`
    /// (`u64::MAX` = no deadline). Returns `None` when the attempt was
    /// abandoned — only possible while the abortable protocol is in
    /// force; the recoverable protocol blocks until granted.
    pub async fn acquire(&self, cpu: &Cpu, p: usize, deadline: u64) -> Option<RobustToken> {
        loop {
            let mode = ProtocolId(cpu.read(self.mode).await as u8);
            if mode == PROTO_ABORTABLE {
                match self.abortable.acquire(cpu, p, deadline).await {
                    Acquired::Aborted => return None,
                    Acquired::Granted(q) => {
                        if cpu.read(self.valid_word(PROTO_ABORTABLE)).await == 1 {
                            return Some(self.decide(cpu, PROTO_ABORTABLE, Some(q)).await);
                        }
                        // Won a dead protocol: bail out to dispatch.
                        self.abortable.release(cpu, q).await;
                    }
                }
            } else {
                self.recoverable.acquire(cpu, p).await;
                if cpu.read(self.valid_word(PROTO_RECOVERABLE)).await == 1 {
                    return Some(self.decide(cpu, PROTO_RECOVERABLE, None).await);
                }
                self.recoverable.release(cpu, p).await;
            }
        }
    }

    /// The monitor: consult the crash counter and the calm streak, ask
    /// the policy, and bind any approved switch to this grant's token.
    async fn decide(&self, cpu: &Cpu, proto: ProtocolId, qnode: Option<Addr>) -> RobustToken {
        let crashes = cpu.read(self.crashes).await;
        let fresh = crashes > self.seen_crashes.get();
        let obs = if proto == PROTO_ABORTABLE {
            if fresh {
                let n = crashes - self.seen_crashes.get();
                Observation::suboptimal(
                    PROTO_ABORTABLE,
                    PROTO_RECOVERABLE,
                    CRASH_RESIDUAL * n as f64,
                )
            } else {
                Observation::optimal(PROTO_ABORTABLE)
            }
        } else if fresh {
            self.calm_streak.set(0);
            Observation::optimal(PROTO_RECOVERABLE)
        } else {
            let streak = self.calm_streak.get() + 1;
            self.calm_streak.set(streak);
            if streak > CALM_LIMIT {
                Observation::suboptimal(PROTO_RECOVERABLE, PROTO_ABORTABLE, RECOVERABLE_RESIDUAL)
            } else {
                Observation::optimal(PROTO_RECOVERABLE)
            }
        };
        self.seen_crashes.set(crashes);
        RobustToken {
            proto,
            qnode,
            switch_to: self.kernel.observe(&obs),
        }
    }

    /// Release as process `p`, performing any protocol change the
    /// monitor decided on at grant time.
    pub async fn release(&self, cpu: &Cpu, p: usize, t: RobustToken) {
        if let Some(to) = t.switch_to {
            // Holder-based Handoff: we hold `t.proto`'s sub-lock, so
            // the transaction cannot lose.
            self.kernel
                .switch(&RobustSwitch { lock: self }, cpu, t.proto, to)
                .await;
        }
        match t.proto {
            PROTO_ABORTABLE => {
                self.abortable
                    .release(cpu, t.qnode.expect("abortable grant carries a node"))
                    .await;
            }
            _ => self.recoverable.release(cpu, p).await,
        }
    }

    /// Per-node crash recovery: bump the NVM crash counter, repair the
    /// recoverable sub-lock's tree state for `p`, and repair any
    /// mode-change transaction the crash interrupted (via the kernel's
    /// write-ahead journal — roll back before commit, complete after).
    /// Install it from the machine's recovery factory
    /// (`m.on_recovery(node, ...)`).
    ///
    /// Returns what the sub-lock recovery found plus what the kernel
    /// recovery did.
    pub async fn recover(&self, cpu: &Cpu, p: usize) -> (Recovery, SwitchRecovery) {
        cpu.fetch_and_add(self.crashes, 1).await;
        // Kernel repair FIRST: if the crash interrupted a switch away
        // from the recoverable protocol, the recovery fence must clear
        // its validity word *before* the tree repair below releases the
        // dead hold — otherwise a waiter could win the tree, pass the
        // stale validity check, and overlap a critical section admitted
        // by the already-published new mode.
        let k = self.kernel.recover(&RobustSwitch { lock: self }, cpu).await;
        let r = self.recoverable.recover(cpu, p).await;
        (r, k)
    }

    /// Raw word addresses `(valid_abortable, valid_recoverable, mode)`
    /// for invariant inspection in tests and scenarios.
    pub fn inspect_words(&self) -> (Addr, Addr, Addr) {
        (
            self.valid_word(PROTO_ABORTABLE),
            self.valid_word(PROTO_RECOVERABLE),
            self.mode,
        )
    }
}

/// The robust lock's [`SwitchableObject`] hooks: validity is realized
/// as the two NVM words, so every hook is an idempotent single-word
/// store — which is what lets [`RobustLock::recover`] re-run them
/// after a crash mid-transaction.
struct RobustSwitch<'a> {
    lock: &'a RobustLock,
}

impl SwitchableObject for RobustSwitch<'_> {
    type Ctx = Cpu;

    async fn validate(&self, cpu: &Cpu, to: ProtocolId, _from: ProtocolId, _state: u64) {
        cpu.write(self.lock.valid_word(to), 1).await;
    }

    async fn invalidate(&self, cpu: &Cpu, from: ProtocolId, _to: ProtocolId) -> Option<u64> {
        cpu.write(self.lock.valid_word(from), 0).await;
        Some(0)
    }

    async fn publish_mode(&self, cpu: &Cpu, to: ProtocolId) {
        cpu.write(self.lock.mode, to.0 as u64).await;
    }

    fn now(&self, cpu: &Cpu) -> u64 {
        cpu.now()
    }

    fn note_switch(&self, cpu: &Cpu, _from: ProtocolId, to: ProtocolId) {
        let name = if to == PROTO_RECOVERABLE {
            "robust_lock.to_recoverable"
        } else {
            "robust_lock.to_abortable"
        };
        cpu.bump(name, 1);
    }

    fn reset_monitor(&self, _to: ProtocolId) {
        self.lock.calm_streak.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::SwitchLog;
    use alewife_sim::{Config, FaultPlan, Machine};

    fn workload(lock: &RobustLock, m: &Machine, procs: usize, iters: u64, shared: Addr) {
        for p in 0..procs {
            let cpu = m.cpu(p);
            let lock = lock.clone();
            m.spawn(p, async move {
                for _ in 0..iters {
                    if let Some(t) = lock.acquire(&cpu, p, u64::MAX).await {
                        let v = cpu.read(shared).await;
                        cpu.work(20).await;
                        cpu.write(shared, v + 1).await;
                        lock.release(&cpu, p, t).await;
                    }
                    cpu.work(cpu.rand_below(100)).await;
                }
            });
        }
    }

    #[test]
    fn mutual_exclusion_without_faults() {
        let procs = 8;
        let m = Machine::new(Config::default().nodes(procs));
        let lock = RobustLock::new(&m, 0, procs);
        let shared = m.alloc_on(1, 1);
        workload(&lock, &m, procs, 25, shared);
        m.run();
        assert_eq!(m.live_tasks(), 0);
        assert_eq!(m.read_word(shared), 200);
        assert_eq!(lock.switches(), 0, "no faults, no reason to switch");
    }

    #[test]
    fn crashes_drive_a_switch_to_the_recoverable_protocol() {
        let procs = 4;
        let m = Machine::new(
            Config::default()
                .nodes(procs)
                .faults(FaultPlan::new().kill_for(4_000, 3, 2_000)),
        );
        let lock = RobustLock::new(&m, 0, procs);
        let shared = m.alloc_on(1, 1);
        // Only procs 0..3 run the workload; node 3 idles and dies (a
        // holder crash would wedge the abortable queue — the monitor
        // reacts to the *observed* crash before that can happen).
        workload(&lock, &m, 3, 30, shared);
        let rcpu = m.cpu(3);
        let rlock = lock.clone();
        m.on_recovery(3, move || {
            let cpu = rcpu.clone();
            let lock = rlock.clone();
            Box::pin(async move {
                lock.recover(&cpu, 3).await;
            })
        });
        m.run();
        assert_eq!(m.live_tasks(), 0);
        assert_eq!(m.read_word(shared), 90);
        assert!(
            lock.switches() >= 1,
            "observed crash should have driven a switch"
        );
        assert_eq!(
            m.stats().counter("robust_lock.to_recoverable"),
            1,
            "first switch goes to the recoverable protocol"
        );
    }

    #[test]
    fn calm_period_switches_back_to_abortable() {
        let procs = 4;
        let m = Machine::new(
            Config::default()
                .nodes(procs)
                .faults(FaultPlan::new().kill_for(2_000, 3, 1_000)),
        );
        let lock = RobustLock::new(&m, 0, procs);
        let shared = m.alloc_on(1, 1);
        // Long run: crash early, then a long calm stretch.
        workload(&lock, &m, 3, 60, shared);
        let rcpu = m.cpu(3);
        let rlock = lock.clone();
        m.on_recovery(3, move || {
            let cpu = rcpu.clone();
            let lock = rlock.clone();
            Box::pin(async move {
                lock.recover(&cpu, 3).await;
            })
        });
        m.run();
        assert_eq!(m.live_tasks(), 0);
        assert_eq!(m.read_word(shared), 180);
        assert!(
            m.stats().counter("robust_lock.to_abortable") >= 1,
            "calm streak should have switched back"
        );
        assert_eq!(lock.current(), PROTO_ABORTABLE);
    }

    #[test]
    fn deadlines_are_honored_in_abortable_mode() {
        let procs = 4;
        let m = Machine::new(Config::default().nodes(procs));
        let lock = RobustLock::new(&m, 0, procs);
        let abort_tally = m.alloc_on(2, 1);
        for p in 0..procs {
            let cpu = m.cpu(p);
            let lock = lock.clone();
            m.spawn(p, async move {
                for _ in 0..25 {
                    match lock.acquire(&cpu, p, cpu.now() + 300).await {
                        Some(t) => {
                            cpu.work(500).await; // CS longer than the deadline
                            lock.release(&cpu, p, t).await;
                        }
                        None => {
                            cpu.fetch_and_add(abort_tally, 1).await;
                        }
                    }
                }
            });
        }
        m.run();
        assert_eq!(m.live_tasks(), 0);
        assert!(
            m.read_word(abort_tally) > 0,
            "tight deadlines must abort some attempts"
        );
    }

    /// Crash the holder *during* the mode-change transaction at every
    /// crash point; kernel recovery must leave exactly one validity
    /// word set and a working lock.
    #[test]
    fn crash_mid_switch_recovers_at_every_point() {
        use reactive_api::CrashPoint;
        for (point, expect) in [
            (
                CrashPoint::AfterSourceInvalidated,
                SwitchRecovery::RolledBack {
                    from: PROTO_ABORTABLE,
                    to: PROTO_RECOVERABLE,
                },
            ),
            (
                CrashPoint::AfterTargetValidated,
                SwitchRecovery::Completed {
                    from: PROTO_ABORTABLE,
                    to: PROTO_RECOVERABLE,
                },
            ),
            (
                CrashPoint::AfterCommit,
                SwitchRecovery::Completed {
                    from: PROTO_ABORTABLE,
                    to: PROTO_RECOVERABLE,
                },
            ),
        ] {
            let m = Machine::new(Config::default().nodes(2));
            let lock = RobustLock::new(&m, 0, 2);
            let cpu = m.cpu(0);
            let l2 = lock.clone();
            m.spawn(0, async move {
                // Simulate a crash mid-transaction, then run recovery as
                // the recovering node would.
                l2.kernel
                    .switch_crashed(
                        &RobustSwitch { lock: &l2 },
                        &cpu,
                        PROTO_ABORTABLE,
                        PROTO_RECOVERABLE,
                        point,
                    )
                    .await;
                let (_, k) = l2.recover(&cpu, 0).await;
                assert_eq!(k, expect, "at {point:?}");
                // Exactly one validity word survives, matching the
                // kernel's view.
                let (va, vr, mode) = l2.inspect_words();
                let a = cpu.read(va).await;
                let r = cpu.read(vr).await;
                assert_eq!(a + r, 1, "exactly one valid word after recovery");
                let cur = l2.current();
                assert_eq!(r == 1, cur == PROTO_RECOVERABLE);
                assert_eq!(cpu.read(mode).await, cur.0 as u64, "mode hint repaired");
                // The lock still works end-to-end.
                let t = l2.acquire(&cpu, 0, u64::MAX).await.unwrap();
                l2.release(&cpu, 0, t).await;
            });
            m.run();
            assert_eq!(m.live_tasks(), 0);
        }
    }

    #[test]
    fn switch_events_reach_the_sink() {
        let procs = 4;
        let log = Rc::new(SwitchLog::new());
        let m = Machine::new(
            Config::default()
                .nodes(procs)
                .faults(FaultPlan::new().kill_for(3_000, 3, 1_500)),
        );
        let lock = RobustLock::builder(&m, 0, procs)
            .instrument(log.clone())
            .build();
        let shared = m.alloc_on(1, 1);
        workload(&lock, &m, 3, 40, shared);
        let rcpu = m.cpu(3);
        let rlock = lock.clone();
        m.on_recovery(3, move || {
            let cpu = rcpu.clone();
            let lock = rlock.clone();
            Box::pin(async move {
                lock.recover(&cpu, 3).await;
            })
        });
        m.run();
        let evs = log.events();
        assert_eq!(evs.len() as u64, lock.switches());
        assert!(!evs.is_empty());
        assert_eq!(
            (evs[0].from, evs[0].to),
            (PROTO_ABORTABLE, PROTO_RECOVERABLE)
        );
        // The commit log satisfies the §3.2 oracle.
        assert!(reactive_api::oracle::check_switch_history(&evs, 2, PROTO_ABORTABLE).is_ok());
    }
}
