//! The reactive spin lock (§3.3.1, §3.7.3, Figures 3.27-3.29).
//!
//! Combines the low uncontended latency of a test-and-test-and-set lock
//! with the scalability and fairness of the MCS queue lock by switching
//! protocol at run time. The two sub-locks *are* the consensus objects:
//!
//! * The algorithm maintains the invariant that **the two sub-locks are
//!   never free at the same time** — the inactive sub-lock is left in a
//!   busy state (TTS flag held `BUSY`; queue tail holding the `INVALID`
//!   marker), so at most one process can ever win a sub-lock.
//! * The mode variable is therefore only a *hint* for fast dispatch: a
//!   process that races a protocol change simply finds the stale
//!   sub-lock busy (or receives an `INVALID` signal on the queue) and
//!   retries with the other protocol.
//! * Protocol changes are performed only by the current lock holder,
//!   which serializes them with all protocol executions (C-serialization
//!   via consensus objects, §3.2.5).
//!
//! Contention monitoring (§3.3.1): in TTS mode the number of failed
//! `test&set` attempts per acquisition estimates contention; in queue
//! mode a streak of empty-queue acquisitions signals its absence. The
//! monitor turns those signals into [`Observation`]s; the configured
//! [`Policy`] decides whether to actually switch, and every committed
//! change is reported to the [`Instrument`] sink as a
//! [`crate::policy::SwitchEvent`].
//!
//! Construction goes through the builder:
//!
//! ```
//! use alewife_sim::{Config, Machine};
//! use reactive_core::policy::Hysteresis;
//! use reactive_core::ReactiveLock;
//!
//! let m = Machine::new(Config::default().nodes(4));
//! let lock = ReactiveLock::builder(&m, 0)
//!     .max_procs(4)
//!     .policy(Hysteresis::new(4, 4))
//!     .build();
//! # drop(lock);
//! ```

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use alewife_sim::{Addr, Cpu, Machine};
use sync_protocols::spin::{
    dec, enc, Backoff, Lock, BUSY, FREE, GO, INITIAL_DELAY, INVALID_PTR, INVALID_STATUS, NIL,
    WAITING,
};

use crate::policy::{
    Always, Instrument, Observation, Policy, ProtocolId, SimKernel, SwitchStyle, SwitchableObject,
};

/// Slot of the test-and-test-and-set protocol (cheap, low latency).
pub const PROTO_TTS: ProtocolId = ProtocolId(0);
/// Slot of the MCS queue protocol (scalable, fair).
pub const PROTO_QUEUE: ProtocolId = ProtocolId(1);

/// Mode word values (the mode hint stores the valid protocol's id).
const MODE_TTS: u64 = PROTO_TTS.0 as u64;
const MODE_QUEUE: u64 = PROTO_QUEUE.0 as u64;

/// Queue-node field offsets (`next`, `status`).
const QN_NEXT: u64 = 0;
const QN_STATUS: u64 = 1;

/// Failed `test&set` attempts in one acquisition that signal high
/// contention (the monitor's hysteresis, §3.7.3).
pub const TTS_RETRY_LIMIT: u64 = 4;

/// Consecutive empty-queue acquisitions that signal low contention.
pub const EMPTY_QUEUE_LIMIT: u64 = 4;

/// Estimated residual cost (cycles) of serving one high-contention
/// acquisition with the TTS protocol instead of the queue (§3.5.5).
pub const TTS_RESIDUAL: f64 = 150.0;

/// Estimated residual cost of serving one low-contention acquisition
/// with the queue protocol instead of TTS (§3.5.5).
pub const QUEUE_RESIDUAL: f64 = 15.0;

/// Empirical round-trip protocol-switching cost (§3.5.5: ≈ 8000 cycles
/// TTS→queue plus ≈ 800 cycles queue→TTS).
pub const SWITCH_ROUND_TRIP: f64 = 8_800.0;

/// What [`ReactiveLock::release`] must do — the paper's `release_mode`
/// (Figure 3.27), carrying the queue node where one is in play.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReleaseMode {
    /// Held via the TTS sub-lock; plain release.
    Tts,
    /// Held via the TTS sub-lock; switch to the queue protocol on
    /// release.
    TtsToQueue,
    /// Held via the queue sub-lock (queue node attached); plain release.
    Queue(Addr),
    /// Held via the queue sub-lock; switch to TTS on release.
    QueueToTts(Addr),
}

/// Builder for [`ReactiveLock`]: placement is positional (machine and
/// home node), everything else — contender sizing, switching policy,
/// instrumentation — is optional with the paper's defaults.
pub struct ReactiveLockBuilder<'m> {
    m: &'m Machine,
    home: usize,
    max_procs: usize,
    policy: Box<dyn Policy>,
    sink: Option<Rc<dyn Instrument>>,
    initial: ProtocolId,
}

impl<'m> ReactiveLockBuilder<'m> {
    /// Size backoff bounds and the queue-node pool for up to `n`
    /// contenders (default: the machine's node count).
    pub fn max_procs(mut self, n: usize) -> Self {
        self.max_procs = n;
        self
    }

    /// Use the given switching policy (default: [`Always`]).
    pub fn policy(mut self, p: impl Policy + 'static) -> Self {
        self.policy = Box::new(p);
        self
    }

    /// Use an already-boxed policy (for `dyn Policy` plumbing).
    pub fn boxed_policy(mut self, p: Box<dyn Policy>) -> Self {
        self.policy = p;
        self
    }

    /// Report every committed protocol change to `sink`.
    pub fn instrument(mut self, sink: Rc<dyn Instrument>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Start in the given protocol ([`PROTO_TTS`] by default). §3.5
    /// shows the initial choice matters for short-running applications:
    /// start scalable when contention is expected from the outset.
    ///
    /// # Panics
    /// If `p` is not one of this lock's two protocol slots.
    pub fn initial_protocol(mut self, p: ProtocolId) -> Self {
        assert!(
            p == PROTO_TTS || p == PROTO_QUEUE,
            "reactive lock has protocols {PROTO_TTS} and {PROTO_QUEUE}, not {p}"
        );
        self.initial = p;
        self
    }

    /// Allocate and initialize the lock (the initial protocol's
    /// sub-lock free, the other pinned busy — never both free).
    pub fn build(self) -> ReactiveLock {
        let m = self.m;
        let locks = m.alloc_on(self.home, 2);
        let mode = m.alloc_on(self.home, 1);
        if self.initial == PROTO_QUEUE {
            // Queue mode: queue valid and empty, TTS pinned busy.
            m.write_word(locks, BUSY);
            m.write_word(locks.plus(1), NIL);
            m.write_word(mode, MODE_QUEUE);
        } else {
            // TTS mode: TTS lock free, queue invalid.
            m.write_word(locks, FREE);
            m.write_word(locks.plus(1), INVALID_PTR);
            m.write_word(mode, MODE_TTS);
        }
        // Both sub-locks are holder-based consensus objects: mode
        // changes run under the paper's handoff discipline (validate
        // the target, publish the hint, leave the source pinned).
        let mut kernel = SimKernel::builder()
            .register(PROTO_TTS, "tts", SwitchStyle::Handoff)
            .register(PROTO_QUEUE, "mcs-queue", SwitchStyle::Handoff)
            .policy(self.policy)
            .initial(self.initial);
        if let Some(sink) = self.sink {
            kernel = kernel.sink(sink);
        }
        ReactiveLock {
            locks,
            mode,
            kernel: Rc::new(kernel.build()),
            empty_streak: Rc::new(Cell::new(0)),
            pool: Rc::new(RefCell::new(vec![Vec::new(); m.nodes()])),
            max_procs: self.max_procs,
        }
    }
}

/// The reactive spin lock. Cheap to clone; clones share the lock.
#[derive(Clone)]
pub struct ReactiveLock {
    /// Line holding `[tts_flag, queue_tail]` (§3.7.3 recommends the
    /// sub-locks share a line so the optimistic `test&set` prefetches
    /// the queue tail).
    locks: Addr,
    /// Mode hint on its own (mostly-read) line.
    mode: Addr,
    kernel: Rc<SimKernel>,
    empty_streak: Rc<Cell<u64>>,
    pool: Rc<RefCell<Vec<Vec<Addr>>>>,
    max_procs: usize,
}

impl std::fmt::Debug for ReactiveLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactiveLock")
            .field("locks", &self.locks)
            .field("mode", &self.mode)
            .finish()
    }
}

impl ReactiveLock {
    /// Start building a reactive lock homed on `home`.
    pub fn builder(m: &Machine, home: usize) -> ReactiveLockBuilder<'_> {
        ReactiveLockBuilder {
            m,
            home,
            max_procs: m.nodes(),
            policy: Box::new(Always),
            sink: None,
            initial: PROTO_TTS,
        }
    }

    /// Create a reactive lock homed on `home` with the default
    /// switch-immediately policy, sized for `max_procs` contenders.
    pub fn new(m: &Machine, home: usize, max_procs: usize) -> ReactiveLock {
        ReactiveLock::builder(m, home).max_procs(max_procs).build()
    }

    fn tts(&self) -> Addr {
        self.locks
    }

    fn tail(&self) -> Addr {
        self.locks.plus(1)
    }

    /// Number of protocol changes performed so far.
    pub fn switches(&self) -> u64 {
        self.kernel.switches()
    }

    /// Raw word addresses `(tts_flag, queue_tail, mode)` for invariant
    /// inspection in tests and tools (e.g. checking the never-both-free
    /// invariant at quiescence).
    pub fn inspect_words(&self) -> (Addr, Addr, Addr) {
        (self.tts(), self.tail(), self.mode)
    }

    fn take_qnode(&self, cpu: &Cpu) -> Addr {
        let mut pool = self.pool.borrow_mut();
        match pool[cpu.node()].pop() {
            Some(a) => a,
            None => cpu.alloc_on(cpu.node(), 2),
        }
    }

    fn put_qnode(&self, cpu: &Cpu, q: Addr) {
        self.pool.borrow_mut()[cpu.node()].push(q);
    }

    /// Acquire the lock; the returned [`ReleaseMode`] must be passed to
    /// [`ReactiveLock::release`].
    pub async fn acquire(&self, cpu: &Cpu) -> ReleaseMode {
        // Optimistic attempt (§3.7.3): in QUEUE mode the TTS flag is
        // permanently BUSY, so success implies the TTS protocol is
        // valid. Test before test&set so the optimism costs only a
        // cache hit while the queue protocol is in force (the flag is
        // constant-BUSY then, so the line stays read-cached).
        if cpu.read(self.tts()).await == FREE && cpu.test_and_set(self.tts()).await == FREE {
            return self.decide_after_tts(0);
        }
        loop {
            let mode = cpu.read(self.mode).await;
            let r = if mode == MODE_TTS {
                self.acquire_tts(cpu).await
            } else {
                self.acquire_queue(cpu).await
            };
            if let Some(r) = r {
                return r;
            }
            // Protocol changed under us (or the queue was invalid):
            // re-dispatch on the fresh mode hint.
        }
    }

    /// TTS-protocol acquisition (Figure 3.28's `acquire_tts`). Returns
    /// `None` if the mode changed away from TTS.
    async fn acquire_tts(&self, cpu: &Cpu) -> Option<ReleaseMode> {
        let mut backoff = Backoff::new(INITIAL_DELAY, 64 * self.max_procs as u64);
        let mut failures: u64 = 0;
        loop {
            if cpu.read(self.tts()).await == FREE {
                if cpu.test_and_set(self.tts()).await == FREE {
                    return Some(self.decide_after_tts(failures));
                }
                failures += 1;
                backoff.pause(cpu).await;
            } else {
                // Read-poll the (cached) flag, but wake periodically to
                // re-check the mode hint: an invalid TTS flag stays BUSY
                // forever and would otherwise spin us indefinitely.
                let deadline = cpu.now() + 400;
                cpu.poll_until_deadline(self.tts(), |v| v == FREE, deadline)
                    .await;
            }
            if cpu.read(self.mode).await != MODE_TTS {
                return None;
            }
        }
    }

    /// Monitor + policy decision after winning the TTS sub-lock.
    fn decide_after_tts(&self, failures: u64) -> ReleaseMode {
        self.empty_streak.set(0);
        let obs = if failures > TTS_RETRY_LIMIT {
            let residual = TTS_RESIDUAL * (failures as f64 / TTS_RETRY_LIMIT as f64).min(4.0);
            Observation::suboptimal(PROTO_TTS, PROTO_QUEUE, residual)
        } else {
            Observation::optimal(PROTO_TTS)
        };
        match self.kernel.observe(&obs) {
            Some(_queue) => ReleaseMode::TtsToQueue,
            None => ReleaseMode::Tts,
        }
    }

    /// Queue-protocol acquisition (Figure 3.28's `acquire_queue`).
    /// Returns `None` if the queue protocol was invalid.
    async fn acquire_queue(&self, cpu: &Cpu) -> Option<ReleaseMode> {
        let q = self.take_qnode(cpu);
        cpu.write(q.plus(QN_NEXT), NIL).await;
        let pred = cpu.fetch_and_store(self.tail(), enc(q)).await;
        if pred == NIL {
            // Empty queue: lock acquired immediately (low contention).
            let streak = self.empty_streak.get() + 1;
            self.empty_streak.set(streak);
            let obs = if streak > EMPTY_QUEUE_LIMIT {
                Observation::suboptimal(PROTO_QUEUE, PROTO_TTS, QUEUE_RESIDUAL)
            } else {
                Observation::optimal(PROTO_QUEUE)
            };
            if self.kernel.observe(&obs).is_some() {
                return Some(ReleaseMode::QueueToTts(q));
            }
            return Some(ReleaseMode::Queue(q));
        }
        if pred != INVALID_PTR {
            cpu.write(q.plus(QN_STATUS), WAITING).await;
            cpu.write(dec(pred).plus(QN_NEXT), enc(q)).await;
            self.empty_streak.set(0);
            let status = cpu.poll_until(q.plus(QN_STATUS), |v| v != WAITING).await;
            if status == GO {
                // Honor the policy even on this optimal path: user
                // policies may direct a switch on any observation (the
                // only other slot is TTS, so an approved target is it).
                if self
                    .kernel
                    .observe(&Observation::optimal(PROTO_QUEUE))
                    .is_some()
                {
                    return Some(ReleaseMode::QueueToTts(q));
                }
                return Some(ReleaseMode::Queue(q));
            }
            // INVALID: the queue protocol was switched away while we
            // waited; retry via dispatch (mode now points at TTS).
            debug_assert_eq!(status, INVALID_STATUS);
            self.put_qnode(cpu, q);
            return None;
        }
        // We swapped our node onto an *invalid* queue: restore the
        // INVALID marker (propagating it to anyone who chained behind
        // us) and retry with the other protocol.
        self.invalidate_queue_from(cpu, q).await;
        self.put_qnode(cpu, q);
        None
    }

    /// Release the lock, performing any protocol change the acquisition
    /// decided on (Figure 3.29).
    pub async fn release(&self, cpu: &Cpu, rm: ReleaseMode) {
        match rm {
            ReleaseMode::Tts => {
                cpu.write(self.tts(), FREE).await;
            }
            ReleaseMode::Queue(q) => {
                self.release_queue(cpu, q).await;
                self.put_qnode(cpu, q);
            }
            ReleaseMode::TtsToQueue => {
                // `release_tts_to_queue` (Figure 3.29), driven by the
                // switching kernel: validate the queue (leaving the TTS
                // flag BUSY), publish the hint, then release via the
                // queue.
                let q = self.take_qnode(cpu);
                self.kernel
                    .switch(&LockSwitch { lock: self, q }, cpu, PROTO_TTS, PROTO_QUEUE)
                    .await;
                self.release_queue(cpu, q).await;
                self.put_qnode(cpu, q);
            }
            ReleaseMode::QueueToTts(q) => {
                // `release_queue_to_tts`: the kernel flips the hint and
                // invalidates the queue (bouncing any waiters); freeing
                // the TTS flag is this holder's release through the
                // now-valid protocol.
                self.kernel
                    .switch(&LockSwitch { lock: self, q }, cpu, PROTO_QUEUE, PROTO_TTS)
                    .await;
                cpu.write(self.tts(), FREE).await;
            }
        }
    }

    /// MCS release with the usurper race handling (Figure 3.28).
    async fn release_queue(&self, cpu: &Cpu, q: Addr) {
        let next = cpu.read(q.plus(QN_NEXT)).await;
        if next == NIL {
            let old_tail = cpu.fetch_and_store(self.tail(), NIL).await;
            if old_tail == enc(q) {
                return;
            }
            let usurper = cpu.fetch_and_store(self.tail(), old_tail).await;
            let next = cpu.poll_until(q.plus(QN_NEXT), |v| v != NIL).await;
            if usurper != NIL {
                cpu.write(dec(usurper).plus(QN_NEXT), next).await;
            } else {
                cpu.write(dec(next).plus(QN_STATUS), GO).await;
            }
        } else {
            cpu.write(dec(next).plus(QN_STATUS), GO).await;
        }
    }

    /// Figure 3.29's `acquire_invalid_queue`: install our node as the
    /// head of the (currently invalid) queue, retrying if other racers
    /// piled onto it first.
    async fn acquire_invalid_queue(&self, cpu: &Cpu, q: Addr) {
        loop {
            cpu.write(q.plus(QN_NEXT), NIL).await;
            let pred = cpu.fetch_and_store(self.tail(), enc(q)).await;
            if pred == INVALID_PTR {
                return;
            }
            // Landed behind someone on an invalid queue: wait for the
            // INVALID signal to ripple to us, then retry.
            cpu.write(q.plus(QN_STATUS), WAITING).await;
            cpu.write(dec(pred).plus(QN_NEXT), enc(q)).await;
            cpu.poll_until(q.plus(QN_STATUS), |v| v != WAITING).await;
        }
    }

    /// Figure 3.29's `invalidate_queue`: swap the tail to INVALID and
    /// walk from `head` to the old tail signalling every waiter to
    /// retry.
    async fn invalidate_queue_from(&self, cpu: &Cpu, head: Addr) {
        let tail = cpu.fetch_and_store(self.tail(), INVALID_PTR).await;
        let mut head = head;
        while enc(head) != tail {
            let next = cpu.poll_until(head.plus(QN_NEXT), |v| v != NIL).await;
            cpu.write(head.plus(QN_STATUS), INVALID_STATUS).await;
            head = dec(next);
        }
        cpu.write(head.plus(QN_STATUS), INVALID_STATUS).await;
    }
}

/// The lock's [`SwitchableObject`] hooks: the physical realization of
/// "make a sub-lock valid / invalid" for the two consensus objects,
/// bound to the queue node `q` involved in the transition (the node
/// being installed for TTS → queue, the held node for queue → TTS).
/// Sequencing, validity bookkeeping, and event emission are the
/// kernel's.
struct LockSwitch<'a> {
    lock: &'a ReactiveLock,
    q: Addr,
}

impl SwitchableObject for LockSwitch<'_> {
    type Ctx = Cpu;

    async fn validate(&self, cpu: &Cpu, to: ProtocolId, _from: ProtocolId, _state: u64) {
        if to == PROTO_QUEUE {
            // Install our node as the head of the (invalid) queue,
            // making the queue protocol valid-and-held.
            self.lock.acquire_invalid_queue(cpu, self.q).await;
        }
        // TTS becomes valid when the switcher frees the flag — that is
        // its release through the new protocol, after the transaction.
    }

    async fn invalidate(&self, cpu: &Cpu, from: ProtocolId, _to: ProtocolId) -> Option<u64> {
        if from == PROTO_QUEUE {
            // Bounce every queued waiter back to dispatch and leave the
            // INVALID sentinel in the tail.
            self.lock.invalidate_queue_from(cpu, self.q).await;
            self.lock.put_qnode(cpu, self.q);
        }
        // An invalid TTS flag is simply left BUSY (never written). The
        // holder-based discipline is exclusive, so this cannot lose.
        Some(0)
    }

    async fn publish_mode(&self, cpu: &Cpu, to: ProtocolId) {
        cpu.write(self.lock.mode, to.0 as u64).await;
    }

    fn now(&self, cpu: &Cpu) -> u64 {
        cpu.now()
    }

    fn note_switch(&self, cpu: &Cpu, _from: ProtocolId, to: ProtocolId) {
        let name = if to == PROTO_QUEUE {
            "reactive_lock.to_queue"
        } else {
            "reactive_lock.to_tts"
        };
        cpu.bump(name, 1);
    }

    fn reset_monitor(&self, _to: ProtocolId) {
        self.lock.empty_streak.set(0);
    }
}

impl Lock for ReactiveLock {
    type Token = ReleaseMode;

    async fn acquire(&self, cpu: &Cpu) -> ReleaseMode {
        ReactiveLock::acquire(self, cpu).await
    }

    async fn release(&self, cpu: &Cpu, t: ReleaseMode) {
        ReactiveLock::release(self, cpu, t).await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Competitive3, SwitchLog};
    use alewife_sim::{Config, Machine};

    fn hammer(
        lock_of: impl Fn(&Machine) -> ReactiveLock,
        procs: usize,
        iters: u64,
    ) -> (u64, u64, u64) {
        let m = Machine::new(Config::default().nodes(procs.max(2)));
        let lock = lock_of(&m);
        let shared = m.alloc_on(1, 1);
        for p in 0..procs {
            let cpu = m.cpu(p);
            let lock = lock.clone();
            m.spawn(p, async move {
                for _ in 0..iters {
                    let t = lock.acquire(&cpu).await;
                    let v = cpu.read(shared).await;
                    cpu.work(10).await;
                    cpu.write(shared, v + 1).await;
                    lock.release(&cpu, t).await;
                    cpu.work(cpu.rand_below(100)).await;
                }
            });
        }
        let t = m.run();
        assert_eq!(m.live_tasks(), 0, "reactive lock deadlock");
        (m.read_word(shared), t, lock.switches())
    }

    fn always(m: &Machine) -> ReactiveLock {
        ReactiveLock::builder(m, 0).policy(Always).build()
    }

    #[test]
    fn starts_in_queue_mode_when_asked() {
        let (v, _, _) = hammer(
            |m| {
                ReactiveLock::builder(m, 0)
                    .initial_protocol(PROTO_QUEUE)
                    .policy(Always)
                    .build()
            },
            8,
            40,
        );
        assert_eq!(v, 320);
        // Never-both-free must hold from birth in queue mode too.
        let m = Machine::new(Config::default().nodes(2));
        let lock = ReactiveLock::builder(&m, 0)
            .initial_protocol(PROTO_QUEUE)
            .build();
        let (tts, tail, mode) = lock.inspect_words();
        assert_eq!(m.read_word(tts), BUSY);
        assert_eq!(m.read_word(tail), NIL);
        assert_eq!(m.read_word(mode), MODE_QUEUE);
    }

    #[test]
    #[should_panic(expected = "not P5")]
    fn rejects_unknown_initial_protocol() {
        let m = Machine::new(Config::default().nodes(2));
        let _ = ReactiveLock::builder(&m, 0).initial_protocol(ProtocolId(5));
    }

    #[test]
    fn mutual_exclusion_single_proc() {
        let (v, _, _) = hammer(always, 1, 200);
        assert_eq!(v, 200);
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        let (v, _, switches) = hammer(always, 16, 30);
        assert_eq!(v, 480);
        // Heavy contention from the start: it should have moved to the
        // queue protocol.
        assert!(switches >= 1, "never switched protocols");
    }

    #[test]
    fn mutual_exclusion_two_procs() {
        let (v, _, _) = hammer(always, 2, 150);
        assert_eq!(v, 300);
    }

    #[test]
    fn stays_in_tts_mode_uncontended() {
        let m = Machine::new(Config::default().nodes(2));
        let lock = ReactiveLock::new(&m, 0, 2);
        let cpu = m.cpu(0);
        let l2 = lock.clone();
        m.spawn(0, async move {
            for _ in 0..100 {
                let t = l2.acquire(&cpu).await;
                cpu.work(10).await;
                l2.release(&cpu, t).await;
                cpu.work(20).await;
            }
        });
        m.run();
        assert_eq!(lock.switches(), 0, "uncontended lock should not switch");
        assert_eq!(m.read_word(lock.mode), MODE_TTS);
    }

    #[test]
    fn switches_to_queue_under_sustained_contention() {
        let (_, _, switches) = hammer(always, 32, 20);
        assert!(switches >= 1);
    }

    #[test]
    fn switch_events_reach_the_sink() {
        let log = Rc::new(SwitchLog::new());
        let sink = log.clone();
        let (_, _, switches) = hammer(
            move |m| {
                ReactiveLock::builder(m, 0)
                    .max_procs(16)
                    .instrument(sink.clone())
                    .build()
            },
            16,
            30,
        );
        let evs = log.events();
        assert_eq!(evs.len() as u64, switches, "sink missed events");
        assert!(!evs.is_empty());
        // First change under heavy load is TTS -> queue, with the
        // monitor's residual attached and a real timestamp.
        assert_eq!((evs[0].from, evs[0].to), (PROTO_TTS, PROTO_QUEUE));
        assert!(evs[0].residual > 0.0);
        let mut last = 0;
        for e in &evs {
            assert!(e.time >= last, "events out of order");
            last = e.time;
            assert_ne!(e.from, e.to);
        }
    }

    #[test]
    fn switches_back_to_tts_when_contention_fades() {
        // Phase 1: 8 procs hammer the lock; phase 2: only proc 0 uses it.
        let m = Machine::new(Config::default().nodes(8));
        let lock = ReactiveLock::new(&m, 0, 8);
        let shared = m.alloc_on(1, 1);
        for p in 0..8 {
            let cpu = m.cpu(p);
            let lock = lock.clone();
            m.spawn(p, async move {
                for _ in 0..20 {
                    let t = lock.acquire(&cpu).await;
                    cpu.work(50).await;
                    cpu.fetch_and_add(shared, 1).await;
                    lock.release(&cpu, t).await;
                    cpu.work(cpu.rand_below(100)).await;
                }
                if cpu.node() == 0 {
                    // Solo phase: far more than EMPTY_QUEUE_LIMIT
                    // acquisitions with an empty queue.
                    for _ in 0..30 {
                        let t = lock.acquire(&cpu).await;
                        cpu.work(10).await;
                        cpu.fetch_and_add(shared, 1).await;
                        lock.release(&cpu, t).await;
                        cpu.work(20).await;
                    }
                }
            });
        }
        m.run();
        assert_eq!(m.live_tasks(), 0);
        assert_eq!(m.read_word(shared), 8 * 20 + 30);
        // After the solo phase the lock must have returned to TTS mode.
        assert_eq!(m.read_word(lock.mode), MODE_TTS, "did not fall back to TTS");
        let st = m.stats();
        assert!(st.counter("reactive_lock.to_queue") >= 1);
        assert!(st.counter("reactive_lock.to_tts") >= 1);
    }

    #[test]
    fn competitive_policy_switches_more_conservatively() {
        let (_, _, sw_always) = hammer(always, 16, 25);
        let (_, _, sw_comp) = hammer(
            |m| {
                ReactiveLock::builder(m, 0)
                    .max_procs(16)
                    .policy(Competitive3::new(SWITCH_ROUND_TRIP))
                    .build()
            },
            16,
            25,
        );
        assert!(
            sw_comp <= sw_always,
            "3-competitive ({sw_comp}) switched more than always ({sw_always})"
        );
    }

    #[test]
    fn reactive_close_to_best_static_at_both_extremes() {
        use sync_protocols::spin::{McsLock, TtsLock};

        fn run_static<L: sync_protocols::spin::Lock>(
            mk: impl Fn(&Machine) -> L,
            procs: usize,
            iters: u64,
        ) -> u64 {
            let m = Machine::new(Config::default().nodes(procs.max(2)));
            let lock = mk(&m);
            for p in 0..procs {
                let cpu = m.cpu(p);
                let lock = lock.clone();
                m.spawn(p, async move {
                    for _ in 0..iters {
                        let t = lock.acquire(&cpu).await;
                        cpu.work(100).await;
                        lock.release(&cpu, t).await;
                        cpu.work(cpu.rand_below(500)).await;
                    }
                });
            }
            let t = m.run();
            assert_eq!(m.live_tasks(), 0);
            t
        }

        fn run_reactive(procs: usize, iters: u64) -> u64 {
            let m = Machine::new(Config::default().nodes(procs.max(2)));
            let lock = ReactiveLock::new(&m, 0, procs);
            for p in 0..procs {
                let cpu = m.cpu(p);
                let lock = lock.clone();
                m.spawn(p, async move {
                    for _ in 0..iters {
                        let t = lock.acquire(&cpu).await;
                        cpu.work(100).await;
                        lock.release(&cpu, t).await;
                        cpu.work(cpu.rand_below(500)).await;
                    }
                });
            }
            let t = m.run();
            assert_eq!(m.live_tasks(), 0);
            t
        }

        // Uncontended: reactive should be within 1.5x of TTS.
        let tts1 = run_static(|m| TtsLock::new(m, 0, 1), 1, 150);
        let re1 = run_reactive(1, 150);
        assert!(
            (re1 as f64) < 1.5 * tts1 as f64,
            "reactive {re1} vs TTS {tts1} uncontended"
        );

        // Contended: reactive should be within 1.5x of MCS.
        let mcs16 = run_static(|m| McsLock::new(m, 0), 16, 25);
        let re16 = run_reactive(16, 25);
        assert!(
            (re16 as f64) < 1.5 * mcs16 as f64,
            "reactive {re16} vs MCS {mcs16} contended"
        );
    }
}
