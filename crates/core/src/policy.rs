//! Protocol-switching policies and the simulator-side selector.
//!
//! The policy *types* live in [`reactive_api`] and are shared with the
//! native implementations; this module re-exports them and adds
//! [`Selector`], the piece every simulator-side reactive object embeds:
//! a cloneable handle bundling the boxed [`Policy`], the optional
//! [`Instrument`] sink, and the switch counter, so that monitoring code
//! in `lock`/`fetch_op`/`mp` only produces [`Observation`]s and performs
//! the consensus-object machinery for approved switches.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use alewife_sim::Cpu;

pub use reactive_api::{
    Always, Competitive3, Decision, Hysteresis, Instrument, Observation, Policy, Protocol,
    ProtocolId, ProtocolInfo, SwitchEvent, SwitchLog, SwitchTally,
};

struct Inner<const N: usize> {
    info: [ProtocolInfo; N],
    policy: RefCell<Box<dyn Policy>>,
    sink: Option<Rc<dyn Instrument>>,
    switches: Cell<u64>,
    /// Residual carried from the approving observation to the commit
    /// point (decisions are taken at acquire time, the switch machinery
    /// often runs at release time; both happen inside one holder's
    /// critical section, so a single cell suffices).
    pending_residual: Cell<f64>,
}

/// The protocol selector of an N-way reactive object: policy
/// consultation, switch counting, and switch-event instrumentation.
/// Cheap to clone; clones share all state with the object.
pub struct Selector<const N: usize> {
    inner: Rc<Inner<N>>,
}

impl<const N: usize> Clone for Selector<N> {
    fn clone(&self) -> Self {
        Selector {
            inner: self.inner.clone(),
        }
    }
}

impl<const N: usize> std::fmt::Debug for Selector<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Selector")
            .field("protocols", &self.inner.info)
            .field("switches", &self.inner.switches.get())
            .finish()
    }
}

impl<const N: usize> Selector<N> {
    /// Create a selector over the given protocol slots.
    ///
    /// # Panics
    /// * If `N == 0` — a reactive object with no protocols cannot serve
    ///   any request; constructing one is always a builder bug.
    /// * If the slots are not registered in id order `0..N` — which also
    ///   rejects registering the same [`ProtocolId`] twice (two slots
    ///   cannot both hold id `i`).
    pub fn new(
        info: [ProtocolInfo; N],
        policy: Box<dyn Policy>,
        sink: Option<Rc<dyn Instrument>>,
    ) -> Selector<N> {
        assert!(N > 0, "a reactive object needs at least one protocol");
        for (i, pi) in info.iter().enumerate() {
            assert_eq!(
                pi.id.index(),
                i,
                "protocol slots must be in id order (duplicate or out-of-order registration)"
            );
        }
        Selector {
            inner: Rc::new(Inner {
                info,
                policy: RefCell::new(policy),
                sink,
                switches: Cell::new(0),
                pending_residual: Cell::new(0.0),
            }),
        }
    }

    /// Feed one acquisition's observation to the policy. Returns the
    /// switch target if the policy directed a change (always a valid,
    /// non-current slot), or `None` to stay.
    pub fn observe(&self, obs: &Observation) -> Option<ProtocolId> {
        match self.inner.policy.borrow_mut().decide(obs) {
            Decision::SwitchTo(t) if t != obs.current && t.index() < N => {
                self.inner.pending_residual.set(obs.residual);
                Some(t)
            }
            _ => None,
        }
    }

    /// Report that the protocol change `from → to` committed (the
    /// consensus-object machinery completed): bumps the switch counter,
    /// resets the policy's evidence, and emits a [`SwitchEvent`]
    /// stamped with the simulated clock.
    pub fn commit(&self, cpu: &Cpu, from: ProtocolId, to: ProtocolId) {
        self.inner.switches.set(self.inner.switches.get() + 1);
        self.inner.policy.borrow_mut().reset();
        if let Some(sink) = &self.inner.sink {
            sink.switch_event(SwitchEvent {
                time: cpu.now(),
                from,
                to,
                residual: self.inner.pending_residual.take(),
            });
        }
    }

    /// Number of protocol changes committed so far.
    pub fn switches(&self) -> u64 {
        self.inner.switches.get()
    }

    /// Identity of the protocol in slot `id`.
    pub fn protocol(&self, id: ProtocolId) -> ProtocolInfo {
        self.inner.info[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alewife_sim::{Config, Machine};

    const A: ProtocolId = ProtocolId(0);
    const B: ProtocolId = ProtocolId(1);

    fn two() -> [ProtocolInfo; 2] {
        [
            ProtocolInfo { id: A, name: "a" },
            ProtocolInfo { id: B, name: "b" },
        ]
    }

    #[test]
    fn clones_share_policy_state() {
        let s = Selector::new(two(), Box::new(Competitive3::new(100.0)), None);
        let t = s.clone();
        assert!(s.observe(&Observation::suboptimal(A, B, 60.0)).is_none());
        assert_eq!(t.observe(&Observation::suboptimal(A, B, 60.0)), Some(B));
    }

    #[test]
    fn commit_counts_and_emits() {
        let log = Rc::new(SwitchLog::new());
        let s = Selector::new(
            two(),
            Box::new(Always),
            Some(log.clone() as Rc<dyn Instrument>),
        );
        let m = Machine::new(Config::default().nodes(2));
        let cpu = m.cpu(0);
        assert_eq!(s.observe(&Observation::suboptimal(A, B, 42.0)), Some(B));
        s.commit(&cpu, A, B);
        assert_eq!(s.switches(), 1);
        let evs = log.events();
        assert_eq!(evs.len(), 1);
        assert_eq!((evs[0].from, evs[0].to), (A, B));
        assert_eq!(evs[0].residual, 42.0);
    }

    #[test]
    fn out_of_range_targets_are_rejected() {
        struct Wild;
        impl Policy for Wild {
            fn decide(&mut self, _obs: &Observation) -> Decision {
                Decision::SwitchTo(ProtocolId(7))
            }
        }
        let s = Selector::new(two(), Box::new(Wild), None);
        assert_eq!(s.observe(&Observation::optimal(A)), None);
    }

    #[test]
    fn protocol_info_lookup() {
        let s = Selector::new(two(), Box::new(Always), None);
        assert_eq!(s.protocol(B).name, "b");
    }
}
