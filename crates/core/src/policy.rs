//! Protocol-switching policies (§3.4, §3.5.5).
//!
//! A reactive algorithm's *monitoring* code produces a stream of
//! observations ("this acquisition ran under the wrong protocol, wasting
//! about `residual` cycles"). The policy decides whether to actually
//! switch, trading adaptation speed against thrash resistance:
//!
//! * [`Policy::always`] — switch immediately on a sub-optimality signal
//!   (the paper's default; tracks contention closely, can thrash).
//! * [`Policy::competitive3`] — the 3-competitive rule from the
//!   Borodin-Linial-Saks task-system algorithm (§3.4.1): accumulate the
//!   residual cost of staying and switch when it exceeds the round-trip
//!   switching cost. Worst case 3× the off-line optimum.
//! * [`Policy::hysteresis`] — switch after `x` (resp. `y`) *consecutive*
//!   sub-optimal acquisitions; streak breaks reset the evidence.

use std::cell::Cell;
use std::rc::Rc;

/// Which protocol a two-protocol reactive object currently runs
/// (generalizes to "cheap" vs "scalable").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// The low-latency protocol (e.g. test-and-test-and-set).
    Cheap,
    /// The contention-tolerant protocol (e.g. MCS queue / combining).
    Scalable,
}

#[derive(Clone, Debug)]
enum Kind {
    Always,
    Competitive3 {
        /// d_AB + d_BA: the round-trip protocol-switching cost.
        round_trip: f64,
        accumulated: Cell<f64>,
    },
    Hysteresis {
        /// Consecutive sub-optimal signals needed to leave `Cheap`.
        x: u64,
        /// Consecutive sub-optimal signals needed to leave `Scalable`.
        y: u64,
        streak: Cell<u64>,
    },
}

/// A protocol-switching policy instance. One per reactive object (the
/// internal counters are object-local); cheap to clone and share among
/// the tasks using that object.
#[derive(Clone, Debug)]
pub struct Policy {
    kind: Rc<Kind>,
    switches: Rc<Cell<u64>>,
}

impl Policy {
    /// Switch as soon as the monitor reports the other protocol would be
    /// better (§3.4's default policy).
    pub fn always() -> Policy {
        Policy::from_kind(Kind::Always)
    }

    /// 3-competitive policy (§3.4.1): switch when the cumulative residual
    /// cost of the sub-optimal protocol exceeds `round_trip` (the
    /// empirical §3.5.5 value is ≈ 8000 + 800 = 8800 cycles).
    pub fn competitive3(round_trip: f64) -> Policy {
        assert!(round_trip > 0.0, "round-trip cost must be positive");
        Policy::from_kind(Kind::Competitive3 {
            round_trip,
            accumulated: Cell::new(0.0),
        })
    }

    /// Hysteresis(x, y) (§3.5.5): leave `Cheap` after `x` consecutive
    /// sub-optimal acquisitions, leave `Scalable` after `y`.
    pub fn hysteresis(x: u64, y: u64) -> Policy {
        assert!(x > 0 && y > 0, "hysteresis thresholds must be positive");
        Policy::from_kind(Kind::Hysteresis {
            x,
            y,
            streak: Cell::new(0),
        })
    }

    fn from_kind(kind: Kind) -> Policy {
        Policy {
            kind: Rc::new(kind),
            switches: Rc::new(Cell::new(0)),
        }
    }

    /// Report one acquisition observed in mode `mode`. `suboptimal` is
    /// the monitor's verdict for this acquisition; `residual` its
    /// estimate of the cycles wasted relative to the other protocol.
    /// Returns `true` if the algorithm should switch protocols now.
    pub fn observe(&self, mode: Mode, suboptimal: bool, residual: f64) -> bool {
        let switch = match &*self.kind {
            Kind::Always => suboptimal,
            Kind::Competitive3 {
                round_trip,
                accumulated,
            } => {
                if suboptimal {
                    accumulated.set(accumulated.get() + residual);
                }
                // Unlike hysteresis, the cumulative cost persists across
                // breaks in the streak (§3.4).
                accumulated.get() > *round_trip
            }
            Kind::Hysteresis { x, y, streak } => {
                if suboptimal {
                    streak.set(streak.get() + 1);
                } else {
                    streak.set(0);
                }
                let limit = match mode {
                    Mode::Cheap => *x,
                    Mode::Scalable => *y,
                };
                streak.get() >= limit
            }
        };
        if switch {
            self.reset();
            self.switches.set(self.switches.get() + 1);
        }
        switch
    }

    /// Clear accumulated evidence (called automatically on a switch).
    pub fn reset(&self) {
        match &*self.kind {
            Kind::Always => {}
            Kind::Competitive3 { accumulated, .. } => accumulated.set(0.0),
            Kind::Hysteresis { streak, .. } => streak.set(0),
        }
    }

    /// Number of switches this policy has approved.
    pub fn switches(&self) -> u64 {
        self.switches.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_switches_immediately() {
        let p = Policy::always();
        assert!(!p.observe(Mode::Cheap, false, 0.0));
        assert!(p.observe(Mode::Cheap, true, 100.0));
        assert_eq!(p.switches(), 1);
    }

    #[test]
    fn competitive3_waits_for_cumulative_cost() {
        let p = Policy::competitive3(1_000.0);
        for _ in 0..9 {
            assert!(!p.observe(Mode::Cheap, true, 100.0));
        }
        // 10th observation pushes the total over the round trip.
        assert!(p.observe(Mode::Cheap, true, 150.0));
        // Evidence resets after a switch.
        assert!(!p.observe(Mode::Scalable, true, 100.0));
    }

    #[test]
    fn competitive3_persists_across_streak_breaks() {
        let p = Policy::competitive3(1_000.0);
        for _ in 0..6 {
            p.observe(Mode::Cheap, true, 100.0);
            // Optimal acquisitions do NOT reset the accumulator.
            p.observe(Mode::Cheap, false, 0.0);
        }
        assert!(p.observe(Mode::Cheap, true, 500.0));
    }

    #[test]
    fn hysteresis_requires_consecutive_evidence() {
        let p = Policy::hysteresis(3, 5);
        assert!(!p.observe(Mode::Cheap, true, 1.0));
        assert!(!p.observe(Mode::Cheap, true, 1.0));
        // A break resets the streak.
        assert!(!p.observe(Mode::Cheap, false, 0.0));
        assert!(!p.observe(Mode::Cheap, true, 1.0));
        assert!(!p.observe(Mode::Cheap, true, 1.0));
        assert!(p.observe(Mode::Cheap, true, 1.0));
    }

    #[test]
    fn hysteresis_is_direction_sensitive() {
        let p = Policy::hysteresis(1, 3);
        assert!(p.observe(Mode::Cheap, true, 1.0));
        assert!(!p.observe(Mode::Scalable, true, 1.0));
        assert!(!p.observe(Mode::Scalable, true, 1.0));
        assert!(p.observe(Mode::Scalable, true, 1.0));
    }

    #[test]
    fn clones_share_state() {
        let p = Policy::competitive3(100.0);
        let q = p.clone();
        p.observe(Mode::Cheap, true, 60.0);
        assert!(q.observe(Mode::Cheap, true, 60.0));
        assert_eq!(p.switches(), 1);
    }
}
