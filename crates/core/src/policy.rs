//! Protocol-switching policies and the simulator-side kernel handle.
//!
//! The policy *types* live in [`reactive_api`] and are shared with the
//! native implementations; this module re-exports them together with
//! the **switching kernel** ([`SwitchKernel`]) — the consensus-object
//! mode-change engine every reactive object in `lock`/`fetch_op`/`mp`/
//! `barrier` embeds. [`SimKernel`] is the kernel instantiated for the
//! simulator's single-threaded world (`Rc` sharing, `!Send` policies
//! allowed); objects share it through `Rc` clones, feed it
//! [`Observation`]s, and run every mode change through
//! [`SwitchKernel::switch`] with their [`SwitchableObject`] hooks.

pub use reactive_api::{
    drive, Always, Competitive3, Decision, Hysteresis, Instrument, KernelBuilder, LocalWorld,
    Observation, Policy, Protocol, ProtocolId, ProtocolInfo, SwitchEvent, SwitchKernel, SwitchLog,
    SwitchStyle, SwitchTally, SwitchableObject,
};

/// The switching kernel instantiated for the simulator world.
pub type SimKernel = SwitchKernel<LocalWorld>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    const A: ProtocolId = ProtocolId(0);
    const B: ProtocolId = ProtocolId(1);

    fn two() -> SimKernel {
        SimKernel::builder()
            .register(A, "a", SwitchStyle::Handoff)
            .register(B, "b", SwitchStyle::Handoff)
            .policy(Box::new(Competitive3::new(100.0)))
            .build()
    }

    #[test]
    fn kernel_clones_share_policy_state() {
        let k = Rc::new(two());
        let t = k.clone();
        assert!(k.observe(&Observation::suboptimal(A, B, 60.0)).is_none());
        assert_eq!(t.observe(&Observation::suboptimal(A, B, 60.0)), Some(B));
    }

    #[test]
    fn sim_policies_need_not_be_send() {
        // The simulator world accepts `!Send` policies (e.g. one that
        // shares state with the spawning test through an Rc).
        use std::cell::Cell;
        struct Counting(Rc<Cell<u64>>);
        impl Policy for Counting {
            fn decide(&mut self, _obs: &Observation) -> Decision {
                self.0.set(self.0.get() + 1);
                Decision::Stay
            }
        }
        let n = Rc::new(Cell::new(0));
        let k = SimKernel::builder()
            .register(A, "a", SwitchStyle::Handoff)
            .policy(Box::new(Counting(n.clone())))
            .build();
        assert_eq!(k.observe(&Observation::optimal(A)), None);
        assert_eq!(n.get(), 1);
    }

    #[test]
    fn protocol_info_lookup() {
        let k = two();
        assert_eq!(k.protocol(B).name, "b");
    }
}
