//! Reactive selection between shared-memory and message-passing
//! protocols (§3.6).
//!
//! Recent machines let software bypass shared memory and talk to the
//! message layer directly; message-passing protocols win under high
//! contention (better communication patterns, handler atomicity) but
//! lose under low contention (fixed send/receive overheads). These
//! reactive algorithms make that choice at run time:
//!
//! * [`ReactiveMpLock`] — test-and-test-and-set (shared memory) vs. a
//!   message-passing queue lock. Consensus objects: the TTS flag (left
//!   busy when invalid) and the manager's validity (an invalid manager
//!   bounces requesters with a retry reply).
//! * [`ReactiveMpFetchOp`] — TTS-lock-protected counter vs. centralized
//!   message-passing fetch-and-op vs. message-passing combining tree.
//!   Protocol changes transfer the counter value; the changer performs
//!   them while holding the currently-valid consensus object.

use std::cell::Cell;
use std::rc::Rc;

use alewife_sim::{Addr, Cpu, Machine};
use sync_protocols::mp::{MpCombiningTree, MpCounter, MpQueueLock};
use sync_protocols::spin::{Backoff, FREE, INITIAL_DELAY};

use crate::policy::{Mode, Policy};

const MODE_TTS: u64 = 0;
const MODE_MP: u64 = 1;
const MODE_TREE: u64 = 2;

/// Failed `test&set`s per acquisition signalling high contention.
const TTS_RETRY_LIMIT: u64 = 4;
/// Consecutive zero-length grant queues signalling low contention.
const EMPTY_LIMIT: u64 = 4;

/// Release token for [`ReactiveMpLock`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MpReleaseMode {
    /// Held via TTS; plain release.
    Tts,
    /// Held via TTS; switch to the message-passing queue on release.
    TtsToMp,
    /// Held via the MP queue; plain release.
    Mp,
    /// Held via the MP queue; switch to TTS on release.
    MpToTts,
}

/// Reactive spin lock selecting between a shared-memory TTS protocol
/// and a message-passing queue-lock protocol (§3.6).
#[derive(Clone)]
pub struct ReactiveMpLock {
    tts: Addr,
    mode: Addr,
    mp: MpQueueLock,
    policy: Policy,
    empty_streak: Rc<Cell<u64>>,
    max_procs: usize,
}

impl std::fmt::Debug for ReactiveMpLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactiveMpLock")
            .field("tts", &self.tts)
            .finish()
    }
}

impl ReactiveMpLock {
    /// Create with the TTS protocol initially valid; the MP lock manager
    /// is installed on `manager`.
    pub fn new(m: &Machine, home: usize, manager: usize, max_procs: usize) -> ReactiveMpLock {
        let tts = m.alloc_on(home, 1);
        let mode = m.alloc_on(home, 1);
        m.write_word(tts, FREE);
        m.write_word(mode, MODE_TTS);
        ReactiveMpLock {
            tts,
            mode,
            mp: MpQueueLock::with_validity(m, manager, false),
            policy: Policy::always(),
            empty_streak: Rc::new(Cell::new(0)),
            max_procs,
        }
    }

    /// Number of protocol changes so far.
    pub fn switches(&self) -> u64 {
        self.policy.switches()
    }

    /// Acquire; pass the returned token to [`ReactiveMpLock::release`].
    pub async fn acquire(&self, cpu: &Cpu) -> MpReleaseMode {
        loop {
            if cpu.read(self.mode).await == MODE_TTS {
                if let Some(r) = self.acquire_tts(cpu).await {
                    return r;
                }
            } else if let Some(r) = self.acquire_mp(cpu).await {
                return r;
            }
        }
    }

    async fn acquire_tts(&self, cpu: &Cpu) -> Option<MpReleaseMode> {
        let mut backoff = Backoff::new(INITIAL_DELAY, 64 * self.max_procs as u64);
        let mut failures = 0u64;
        loop {
            if cpu.read(self.tts).await == FREE {
                if cpu.test_and_set(self.tts).await == FREE {
                    let subopt = failures > TTS_RETRY_LIMIT;
                    self.empty_streak.set(0);
                    return Some(if subopt && self.policy.observe(Mode::Cheap, true, 150.0) {
                        MpReleaseMode::TtsToMp
                    } else {
                        if !subopt {
                            self.policy.observe(Mode::Cheap, false, 0.0);
                        }
                        MpReleaseMode::Tts
                    });
                }
                failures += 1;
                backoff.pause(cpu).await;
            } else {
                let deadline = cpu.now() + 400;
                cpu.poll_until_deadline(self.tts, |v| v == FREE, deadline)
                    .await;
            }
            if cpu.read(self.mode).await != MODE_TTS {
                return None;
            }
        }
    }

    async fn acquire_mp(&self, cpu: &Cpu) -> Option<MpReleaseMode> {
        let qlen = self.mp.try_acquire_with_qlen(cpu).await?;
        if qlen == 0 {
            let streak = self.empty_streak.get() + 1;
            self.empty_streak.set(streak);
            if streak > EMPTY_LIMIT && self.policy.observe(Mode::Scalable, true, 40.0) {
                return Some(MpReleaseMode::MpToTts);
            }
            if streak <= EMPTY_LIMIT {
                self.policy.observe(Mode::Scalable, false, 0.0);
            }
        } else {
            self.empty_streak.set(0);
            self.policy.observe(Mode::Scalable, false, 0.0);
        }
        Some(MpReleaseMode::Mp)
    }

    /// Release, performing any protocol change decided at acquire time.
    pub async fn release(&self, cpu: &Cpu, rm: MpReleaseMode) {
        match rm {
            MpReleaseMode::Tts => cpu.write(self.tts, FREE).await,
            MpReleaseMode::Mp => {
                use sync_protocols::spin::Lock as _;
                self.mp.release(cpu, ()).await;
            }
            MpReleaseMode::TtsToMp => {
                // Validate the manager with the lock held by us, flip the
                // hint, then release through the manager. TTS stays BUSY.
                self.mp.validate_held_via(cpu).await;
                cpu.write(self.mode, MODE_MP).await;
                cpu.bump("reactive_mp_lock.to_mp", 1);
                self.empty_streak.set(0);
                use sync_protocols::spin::Lock as _;
                self.mp.release(cpu, ()).await;
            }
            MpReleaseMode::MpToTts => {
                cpu.write(self.mode, MODE_TTS).await;
                cpu.bump("reactive_mp_lock.to_tts", 1);
                self.mp.invalidate_via(cpu).await;
                cpu.write(self.tts, FREE).await;
            }
        }
    }
}

/// Reactive fetch-and-op selecting among a shared-memory TTS-lock
/// counter, a centralized message-passing counter, and a
/// message-passing combining tree (§3.6).
///
/// Monitoring: failed `test&set`s promote TTS → central MP; central-MP
/// round-trip times (which grow with manager occupancy) promote central
/// → tree and demote tree → central; an empty machine demotes back to
/// TTS. Counter-value transfer happens at switch time under the current
/// consensus object.
#[derive(Clone)]
pub struct ReactiveMpFetchOp {
    tts: Addr,
    var: Addr,
    mode: Addr,
    central: MpCounter,
    tree: MpCombiningTree,
    policy: Policy,
    calm_streak: Rc<Cell<u64>>,
    max_procs: usize,
}

impl std::fmt::Debug for ReactiveMpFetchOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactiveMpFetchOp")
            .field("var", &self.var)
            .finish()
    }
}

/// Central-counter RPC round-trip (cycles) above which combining wins.
const RTT_HIGH: u64 = 700;
/// Round-trip below which the tree is overkill.
const RTT_LOW: u64 = 260;

impl ReactiveMpFetchOp {
    /// Create with the shared-memory TTS protocol initially valid; MP
    /// handlers are installed on `manager`.
    pub fn new(m: &Machine, home: usize, manager: usize, max_procs: usize) -> ReactiveMpFetchOp {
        let tts = m.alloc_on(home, 1);
        let var = m.alloc_on(home, 1);
        let mode = m.alloc_on(home, 1);
        m.write_word(tts, FREE);
        m.write_word(mode, MODE_TTS);
        ReactiveMpFetchOp {
            tts,
            var,
            mode,
            central: MpCounter::with_validity(m, manager, false),
            tree: MpCombiningTree::with_validity(m, manager, max_procs, false),
            policy: Policy::always(),
            calm_streak: Rc::new(Cell::new(0)),
            max_procs,
        }
    }

    /// Number of protocol changes so far.
    pub fn switches(&self) -> u64 {
        self.policy.switches()
    }

    /// The final counter value (host-side inspection after a run).
    pub fn value(&self, m: &Machine) -> u64 {
        // The value lives wherever the currently-valid protocol keeps it.
        match m.read_word(self.mode) {
            MODE_TTS => m.read_word(self.var),
            MODE_MP => self.central.value(),
            _ => self.tree.value(),
        }
    }

    /// Atomically add `delta`, returning the previous value.
    pub async fn fetch_add(&self, cpu: &Cpu, delta: u64) -> u64 {
        loop {
            match cpu.read(self.mode).await {
                MODE_TTS => {
                    if let Some(v) = self.try_tts(cpu, delta).await {
                        return v;
                    }
                }
                MODE_MP => {
                    if let Some(v) = self.try_central(cpu, delta).await {
                        return v;
                    }
                }
                _ => {
                    if let Ok(v) = self.tree.try_fetch_add(cpu, delta).await {
                        // Tree → central demotion is decided by sampled
                        // round-trips on the central path; the tree has
                        // no cheap per-op monitor here, so we sample by
                        // occasionally observing machine calm via the
                        // policy (handled in try_central after demotion).
                        self.note_tree_op(cpu).await;
                        return v;
                    }
                }
            }
        }
    }

    async fn try_tts(&self, cpu: &Cpu, delta: u64) -> Option<u64> {
        let mut backoff = Backoff::new(INITIAL_DELAY, 64 * self.max_procs as u64);
        let mut failures = 0u64;
        loop {
            if cpu.read(self.tts).await == FREE {
                if cpu.test_and_set(self.tts).await == FREE {
                    break;
                }
                failures += 1;
                backoff.pause(cpu).await;
            } else {
                let deadline = cpu.now() + 400;
                cpu.poll_until_deadline(self.tts, |v| v == FREE, deadline)
                    .await;
            }
            if cpu.read(self.mode).await != MODE_TTS {
                return None;
            }
        }
        let old = cpu.read(self.var).await;
        cpu.write(self.var, old.wrapping_add(delta)).await;
        if failures > TTS_RETRY_LIMIT && self.policy.observe(Mode::Cheap, true, 150.0) {
            // Switch TTS -> central MP, transferring the value. We hold
            // the TTS consensus; leave it busy. The validate RPC runs in
            // the manager's handler, atomically with any queued ops.
            let v = cpu.read(self.var).await;
            self.central.validate_via(cpu, v).await;
            cpu.write(self.mode, MODE_MP).await;
            cpu.bump("reactive_mp_fop.to_central", 1);
            self.calm_streak.set(0);
        } else {
            cpu.write(self.tts, FREE).await;
        }
        Some(old)
    }

    async fn try_central(&self, cpu: &Cpu, delta: u64) -> Option<u64> {
        let t0 = cpu.now();
        let old = self.central.try_fetch_add(cpu, delta).await.ok()?;
        let rtt = cpu.now() - t0;
        if rtt > RTT_HIGH
            && self
                .policy
                .observe(Mode::Cheap, true, (rtt - RTT_HIGH) as f64)
        {
            // Promote central -> tree. The invalidate RPC serializes in
            // the manager handler (it IS the consensus object, §3.6) and
            // returns the final value; queued ops bounce and retry.
            let v = self.central.invalidate_via(cpu).await;
            self.tree.validate_via(cpu, v).await;
            cpu.write(self.mode, MODE_TREE).await;
            cpu.bump("reactive_mp_fop.to_tree", 1);
        } else if rtt < RTT_LOW {
            let streak = self.calm_streak.get() + 1;
            self.calm_streak.set(streak);
            if streak > EMPTY_LIMIT && self.policy.observe(Mode::Scalable, true, 40.0) {
                // Demote central -> shared-memory TTS.
                let v = self.central.invalidate_via(cpu).await;
                cpu.write(self.var, v).await;
                cpu.write(self.mode, MODE_TTS).await;
                cpu.bump("reactive_mp_fop.to_tts", 1);
                cpu.write(self.tts, FREE).await;
            }
        } else {
            self.calm_streak.set(0);
        }
        Some(old)
    }

    /// Tree-mode monitoring: sample the machine every so often by
    /// demoting to the central protocol when the tree's own round trips
    /// are fast (little combining → little contention).
    async fn note_tree_op(&self, cpu: &Cpu) {
        // Sample 1 op in 8 to keep monitoring cheap.
        if cpu.rand_below(8) != 0 {
            return;
        }
        let t0 = cpu.now();
        // A no-op fetch_add(0) probes the tree's latency end to end.
        if self.tree.try_fetch_add(cpu, 0).await.is_ok() {
            let rtt = cpu.now() - t0;
            if rtt < RTT_HIGH && self.policy.observe(Mode::Scalable, true, 100.0) {
                let v = self.tree.invalidate_via(cpu).await;
                self.central.validate_via(cpu, v).await;
                cpu.write(self.mode, MODE_MP).await;
                cpu.bump("reactive_mp_fop.tree_to_central", 1);
                self.calm_streak.set(0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alewife_sim::Config;
    use std::cell::RefCell;

    #[test]
    fn mp_lock_mutual_exclusion_and_adaptation() {
        let m = Machine::new(Config::default().nodes(8));
        let lock = ReactiveMpLock::new(&m, 0, 0, 8);
        let shared = m.alloc_on(1, 1);
        for p in 0..8 {
            let cpu = m.cpu(p);
            let lock = lock.clone();
            m.spawn(p, async move {
                for _ in 0..25 {
                    let t = lock.acquire(&cpu).await;
                    let v = cpu.read(shared).await;
                    cpu.work(10).await;
                    cpu.write(shared, v + 1).await;
                    lock.release(&cpu, t).await;
                    cpu.work(cpu.rand_below(80)).await;
                }
            });
        }
        m.run();
        assert_eq!(m.live_tasks(), 0, "reactive MP lock deadlock");
        assert_eq!(m.read_word(shared), 200);
    }

    #[test]
    fn mp_lock_single_proc_stays_tts() {
        let m = Machine::new(Config::default().nodes(2));
        let lock = ReactiveMpLock::new(&m, 0, 1, 2);
        let cpu = m.cpu(0);
        let l2 = lock.clone();
        m.spawn(0, async move {
            for _ in 0..60 {
                let t = l2.acquire(&cpu).await;
                cpu.work(10).await;
                l2.release(&cpu, t).await;
                cpu.work(30).await;
            }
        });
        m.run();
        assert_eq!(lock.switches(), 0);
    }

    #[test]
    fn mp_fetch_op_linearizes_across_switches() {
        let m = Machine::new(Config::default().nodes(16));
        let f = ReactiveMpFetchOp::new(&m, 0, 0, 16);
        let seen = Rc::new(RefCell::new(Vec::new()));
        for p in 0..16 {
            let cpu = m.cpu(p);
            let f = f.clone();
            let seen = seen.clone();
            m.spawn(p, async move {
                for _ in 0..15 {
                    let v = f.fetch_add(&cpu, 1).await;
                    seen.borrow_mut().push(v);
                    cpu.work(cpu.rand_below(80)).await;
                }
            });
        }
        m.run();
        assert_eq!(m.live_tasks(), 0, "reactive MP fetch-op deadlock");
        let mut got = seen.borrow().clone();
        got.sort_unstable();
        assert_eq!(got, (0..240u64).collect::<Vec<_>>());
        assert_eq!(f.value(&m), 240);
    }

    #[test]
    fn mp_fetch_op_single_proc_stays_shared_memory() {
        let m = Machine::new(Config::default().nodes(2));
        let f = ReactiveMpFetchOp::new(&m, 0, 1, 2);
        let cpu = m.cpu(0);
        let f2 = f.clone();
        m.spawn(0, async move {
            for _ in 0..80 {
                f2.fetch_add(&cpu, 1).await;
                cpu.work(20).await;
            }
        });
        m.run();
        assert_eq!(f.switches(), 0);
        assert_eq!(f.value(&m), 80);
    }
}
