//! Reactive selection between shared-memory and message-passing
//! protocols (§3.6).
//!
//! Recent machines let software bypass shared memory and talk to the
//! message layer directly; message-passing protocols win under high
//! contention (better communication patterns, handler atomicity) but
//! lose under low contention (fixed send/receive overheads). These
//! reactive algorithms make that choice at run time:
//!
//! * [`ReactiveMpLock`] — test-and-test-and-set (shared memory) vs. a
//!   message-passing queue lock. Consensus objects: the TTS flag (left
//!   busy when invalid) and the manager's validity (an invalid manager
//!   bounces requesters with a retry reply).
//! * [`ReactiveMpFetchOp`] — TTS-lock-protected counter vs. centralized
//!   message-passing fetch-and-op vs. message-passing combining tree.
//!   Protocol changes transfer the counter value; the changer performs
//!   them while holding the currently-valid consensus object.
//!
//! Both are built through builders and speak the shared reactive API:
//! monitors emit [`Observation`]s, the pluggable [`Policy`] decides, and
//! committed changes are counted and reported to the configured
//! [`Instrument`] sink.

use std::cell::Cell;
use std::rc::Rc;

use alewife_sim::{Addr, Cpu, Machine};
use sync_protocols::mp::{MpCombiningTree, MpCounter, MpQueueLock};
use sync_protocols::spin::{Backoff, FREE, INITIAL_DELAY};

use crate::policy::{
    Always, Instrument, Observation, Policy, ProtocolId, SimKernel, SwitchStyle, SwitchableObject,
};

/// Slot of the shared-memory TTS protocol (locks and fetch-ops).
pub const PROTO_TTS: ProtocolId = ProtocolId(0);
/// Slot of the centralized message-passing protocol.
pub const PROTO_MP: ProtocolId = ProtocolId(1);
/// Slot of the message-passing combining tree (fetch-op only).
pub const PROTO_MP_TREE: ProtocolId = ProtocolId(2);

const MODE_TTS: u64 = PROTO_TTS.0 as u64;
const MODE_MP: u64 = PROTO_MP.0 as u64;

/// Failed `test&set`s per acquisition signalling high contention.
const TTS_RETRY_LIMIT: u64 = 4;
/// Consecutive zero-length grant queues signalling low contention.
const EMPTY_LIMIT: u64 = 4;

/// Release token for [`ReactiveMpLock`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MpReleaseMode {
    /// Held via TTS; plain release.
    Tts,
    /// Held via TTS; switch to the message-passing queue on release.
    TtsToMp,
    /// Held via the MP queue; plain release.
    Mp,
    /// Held via the MP queue; switch to TTS on release.
    MpToTts,
}

/// Builder for [`ReactiveMpLock`].
pub struct ReactiveMpLockBuilder<'m> {
    m: &'m Machine,
    home: usize,
    manager: usize,
    max_procs: usize,
    policy: Box<dyn Policy>,
    sink: Option<Rc<dyn Instrument>>,
}

impl<'m> ReactiveMpLockBuilder<'m> {
    /// Size backoff bounds for up to `n` contenders (default: the
    /// machine's node count).
    pub fn max_procs(mut self, n: usize) -> Self {
        self.max_procs = n;
        self
    }

    /// Use the given switching policy (default: [`Always`]).
    pub fn policy(mut self, p: impl Policy + 'static) -> Self {
        self.policy = Box::new(p);
        self
    }

    /// Use an already-boxed policy (for `dyn Policy` plumbing).
    pub fn boxed_policy(mut self, p: Box<dyn Policy>) -> Self {
        self.policy = p;
        self
    }

    /// Report every committed protocol change to `sink`.
    pub fn instrument(mut self, sink: Rc<dyn Instrument>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Allocate and initialize (TTS valid; MP manager invalid).
    pub fn build(self) -> ReactiveMpLock {
        let m = self.m;
        let tts = m.alloc_on(self.home, 1);
        let mode = m.alloc_on(self.home, 1);
        m.write_word(tts, FREE);
        m.write_word(mode, MODE_TTS);
        // Both consensus objects are holder-based here: the TTS flag is
        // pinned busy while invalid, and the manager's validity flips
        // under the lock holder's RPC.
        let mut kernel = SimKernel::builder()
            .register(PROTO_TTS, "tts", SwitchStyle::Handoff)
            .register(PROTO_MP, "mp-queue", SwitchStyle::Handoff)
            .policy(self.policy);
        if let Some(sink) = self.sink {
            kernel = kernel.sink(sink);
        }
        ReactiveMpLock {
            tts,
            mode,
            mp: MpQueueLock::with_validity(m, self.manager, false),
            kernel: Rc::new(kernel.build()),
            empty_streak: Rc::new(Cell::new(0)),
            max_procs: self.max_procs,
        }
    }
}

/// Reactive spin lock selecting between a shared-memory TTS protocol
/// and a message-passing queue-lock protocol (§3.6).
#[derive(Clone)]
pub struct ReactiveMpLock {
    tts: Addr,
    mode: Addr,
    mp: MpQueueLock,
    kernel: Rc<SimKernel>,
    empty_streak: Rc<Cell<u64>>,
    max_procs: usize,
}

impl std::fmt::Debug for ReactiveMpLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactiveMpLock")
            .field("tts", &self.tts)
            .finish()
    }
}

impl ReactiveMpLock {
    /// Start building a lock homed on `home` whose MP manager runs on
    /// `manager`.
    pub fn builder(m: &Machine, home: usize, manager: usize) -> ReactiveMpLockBuilder<'_> {
        ReactiveMpLockBuilder {
            m,
            home,
            manager,
            max_procs: m.nodes(),
            policy: Box::new(Always),
            sink: None,
        }
    }

    /// Create with the TTS protocol initially valid; the MP lock manager
    /// is installed on `manager`.
    pub fn new(m: &Machine, home: usize, manager: usize, max_procs: usize) -> ReactiveMpLock {
        ReactiveMpLock::builder(m, home, manager)
            .max_procs(max_procs)
            .build()
    }

    /// Number of protocol changes so far.
    pub fn switches(&self) -> u64 {
        self.kernel.switches()
    }

    /// Acquire; pass the returned token to [`ReactiveMpLock::release`].
    pub async fn acquire(&self, cpu: &Cpu) -> MpReleaseMode {
        loop {
            if cpu.read(self.mode).await == MODE_TTS {
                if let Some(r) = self.acquire_tts(cpu).await {
                    return r;
                }
            } else if let Some(r) = self.acquire_mp(cpu).await {
                return r;
            }
        }
    }

    async fn acquire_tts(&self, cpu: &Cpu) -> Option<MpReleaseMode> {
        let mut backoff = Backoff::new(INITIAL_DELAY, 64 * self.max_procs as u64);
        let mut failures = 0u64;
        loop {
            if cpu.read(self.tts).await == FREE {
                if cpu.test_and_set(self.tts).await == FREE {
                    self.empty_streak.set(0);
                    let obs = if failures > TTS_RETRY_LIMIT {
                        Observation::suboptimal(PROTO_TTS, PROTO_MP, 150.0)
                    } else {
                        Observation::optimal(PROTO_TTS)
                    };
                    return Some(if self.kernel.observe(&obs).is_some() {
                        MpReleaseMode::TtsToMp
                    } else {
                        MpReleaseMode::Tts
                    });
                }
                failures += 1;
                backoff.pause(cpu).await;
            } else {
                let deadline = cpu.now() + 400;
                cpu.poll_until_deadline(self.tts, |v| v == FREE, deadline)
                    .await;
            }
            if cpu.read(self.mode).await != MODE_TTS {
                return None;
            }
        }
    }

    async fn acquire_mp(&self, cpu: &Cpu) -> Option<MpReleaseMode> {
        let qlen = self.mp.try_acquire_with_qlen(cpu).await?;
        let obs = if qlen == 0 {
            let streak = self.empty_streak.get() + 1;
            self.empty_streak.set(streak);
            if streak > EMPTY_LIMIT {
                Observation::suboptimal(PROTO_MP, PROTO_TTS, 40.0)
            } else {
                Observation::optimal(PROTO_MP)
            }
        } else {
            self.empty_streak.set(0);
            Observation::optimal(PROTO_MP)
        };
        Some(if self.kernel.observe(&obs).is_some() {
            MpReleaseMode::MpToTts
        } else {
            MpReleaseMode::Mp
        })
    }

    /// Release, performing any protocol change decided at acquire time.
    pub async fn release(&self, cpu: &Cpu, rm: MpReleaseMode) {
        match rm {
            MpReleaseMode::Tts => cpu.write(self.tts, FREE).await,
            MpReleaseMode::Mp => {
                use sync_protocols::spin::Lock as _;
                self.mp.release(cpu, ()).await;
            }
            MpReleaseMode::TtsToMp => {
                // The kernel validates the manager with the lock held
                // by us and flips the hint (TTS stays BUSY); we then
                // release through the manager.
                self.kernel
                    .switch(&MpLockSwitch { lock: self }, cpu, PROTO_TTS, PROTO_MP)
                    .await;
                use sync_protocols::spin::Lock as _;
                self.mp.release(cpu, ()).await;
            }
            MpReleaseMode::MpToTts => {
                // The kernel flips the hint and invalidates the manager
                // (queued requesters bounce); freeing the TTS flag is
                // our release through the new protocol.
                self.kernel
                    .switch(&MpLockSwitch { lock: self }, cpu, PROTO_MP, PROTO_TTS)
                    .await;
                cpu.write(self.tts, FREE).await;
            }
        }
    }
}

/// The MP lock's [`SwitchableObject`] hooks: manager validity RPCs plus
/// the pinned TTS flag.
struct MpLockSwitch<'a> {
    lock: &'a ReactiveMpLock,
}

impl SwitchableObject for MpLockSwitch<'_> {
    type Ctx = Cpu;

    async fn validate(&self, cpu: &Cpu, to: ProtocolId, _from: ProtocolId, _state: u64) {
        if to == PROTO_MP {
            // The validate RPC runs in the manager's handler, atomically
            // with any queued requests, while we hold the lock.
            self.lock.mp.validate_held_via(cpu).await;
        }
        // TTS becomes valid when the switcher frees the flag.
    }

    async fn invalidate(&self, cpu: &Cpu, from: ProtocolId, _to: ProtocolId) -> Option<u64> {
        if from == PROTO_MP {
            // The invalidate RPC serializes in the manager handler;
            // queued requesters receive retry replies. The changer
            // holds the lock, so the attempt is exclusive.
            self.lock.mp.invalidate_via(cpu).await;
        }
        // An invalid TTS flag is left BUSY.
        Some(0)
    }

    async fn publish_mode(&self, cpu: &Cpu, to: ProtocolId) {
        cpu.write(self.lock.mode, to.0 as u64).await;
    }

    fn now(&self, cpu: &Cpu) -> u64 {
        cpu.now()
    }

    fn note_switch(&self, cpu: &Cpu, _from: ProtocolId, to: ProtocolId) {
        let name = if to == PROTO_MP {
            "reactive_mp_lock.to_mp"
        } else {
            "reactive_mp_lock.to_tts"
        };
        cpu.bump(name, 1);
    }

    fn reset_monitor(&self, _to: ProtocolId) {
        self.lock.empty_streak.set(0);
    }
}

/// Builder for [`ReactiveMpFetchOp`].
pub struct ReactiveMpFetchOpBuilder<'m> {
    m: &'m Machine,
    home: usize,
    manager: usize,
    max_procs: usize,
    policy: Box<dyn Policy>,
    sink: Option<Rc<dyn Instrument>>,
}

impl<'m> ReactiveMpFetchOpBuilder<'m> {
    /// Size the MP combining tree for up to `n` requesters (default:
    /// the machine's node count).
    pub fn max_procs(mut self, n: usize) -> Self {
        self.max_procs = n;
        self
    }

    /// Use the given switching policy (default: [`Always`]).
    pub fn policy(mut self, p: impl Policy + 'static) -> Self {
        self.policy = Box::new(p);
        self
    }

    /// Use an already-boxed policy (for `dyn Policy` plumbing).
    pub fn boxed_policy(mut self, p: Box<dyn Policy>) -> Self {
        self.policy = p;
        self
    }

    /// Report every committed protocol change to `sink`.
    pub fn instrument(mut self, sink: Rc<dyn Instrument>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Allocate and initialize (shared-memory TTS valid; MP protocols
    /// invalid).
    pub fn build(self) -> ReactiveMpFetchOp {
        let m = self.m;
        let tts = m.alloc_on(self.home, 1);
        let var = m.alloc_on(self.home, 1);
        let mode = m.alloc_on(self.home, 1);
        m.write_word(tts, FREE);
        m.write_word(mode, MODE_TTS);
        // Every slot here is value-carrying consensus: leaving a
        // protocol must capture the counter atomically with its
        // invalidation and install it into the target, so all exits
        // use the kernel's Transfer discipline.
        let mut kernel = SimKernel::builder()
            .register(PROTO_TTS, "tts-counter", SwitchStyle::Transfer)
            .register(PROTO_MP, "mp-central", SwitchStyle::Transfer)
            .register(PROTO_MP_TREE, "mp-combining-tree", SwitchStyle::Transfer)
            .policy(self.policy);
        if let Some(sink) = self.sink {
            kernel = kernel.sink(sink);
        }
        ReactiveMpFetchOp {
            tts,
            var,
            mode,
            central: MpCounter::with_validity(m, self.manager, false),
            tree: MpCombiningTree::with_validity(m, self.manager, self.max_procs, false),
            kernel: Rc::new(kernel.build()),
            calm_streak: Rc::new(Cell::new(0)),
            max_procs: self.max_procs,
        }
    }
}

/// Reactive fetch-and-op selecting among a shared-memory TTS-lock
/// counter, a centralized message-passing counter, and a
/// message-passing combining tree (§3.6).
///
/// Monitoring: failed `test&set`s promote TTS → central MP; central-MP
/// round-trip times (which grow with manager occupancy) promote central
/// → tree and demote tree → central; an empty machine demotes back to
/// TTS. Counter-value transfer happens at switch time under the current
/// consensus object.
#[derive(Clone)]
pub struct ReactiveMpFetchOp {
    tts: Addr,
    var: Addr,
    mode: Addr,
    central: MpCounter,
    tree: MpCombiningTree,
    kernel: Rc<SimKernel>,
    calm_streak: Rc<Cell<u64>>,
    max_procs: usize,
}

impl std::fmt::Debug for ReactiveMpFetchOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactiveMpFetchOp")
            .field("var", &self.var)
            .finish()
    }
}

/// Central-counter RPC round-trip (cycles) above which combining wins.
const RTT_HIGH: u64 = 700;
/// Round-trip below which the tree is overkill.
const RTT_LOW: u64 = 260;

impl ReactiveMpFetchOp {
    /// Start building a fetch-op homed on `home` whose MP handlers run
    /// on `manager`.
    pub fn builder(m: &Machine, home: usize, manager: usize) -> ReactiveMpFetchOpBuilder<'_> {
        ReactiveMpFetchOpBuilder {
            m,
            home,
            manager,
            max_procs: m.nodes(),
            policy: Box::new(Always),
            sink: None,
        }
    }

    /// Create with the shared-memory TTS protocol initially valid; MP
    /// handlers are installed on `manager`.
    pub fn new(m: &Machine, home: usize, manager: usize, max_procs: usize) -> ReactiveMpFetchOp {
        ReactiveMpFetchOp::builder(m, home, manager)
            .max_procs(max_procs)
            .build()
    }

    /// Number of protocol changes so far.
    pub fn switches(&self) -> u64 {
        self.kernel.switches()
    }

    /// The final counter value (host-side inspection after a run).
    pub fn value(&self, m: &Machine) -> u64 {
        // The value lives wherever the currently-valid protocol keeps it.
        match m.read_word(self.mode) {
            MODE_TTS => m.read_word(self.var),
            MODE_MP => self.central.value(),
            _ => self.tree.value(),
        }
    }

    /// Atomically add `delta`, returning the previous value.
    pub async fn fetch_add(&self, cpu: &Cpu, delta: u64) -> u64 {
        loop {
            match cpu.read(self.mode).await {
                MODE_TTS => {
                    if let Some(v) = self.try_tts(cpu, delta).await {
                        return v;
                    }
                }
                MODE_MP => {
                    if let Some(v) = self.try_central(cpu, delta).await {
                        return v;
                    }
                }
                _ => {
                    if let Ok(v) = self.tree.try_fetch_add(cpu, delta).await {
                        // Tree demotion is decided by sampled round
                        // trips; see `note_tree_op`.
                        self.note_tree_op(cpu).await;
                        return v;
                    }
                }
            }
        }
    }

    async fn try_tts(&self, cpu: &Cpu, delta: u64) -> Option<u64> {
        let mut backoff = Backoff::new(INITIAL_DELAY, 64 * self.max_procs as u64);
        let mut failures = 0u64;
        loop {
            if cpu.read(self.tts).await == FREE {
                if cpu.test_and_set(self.tts).await == FREE {
                    break;
                }
                failures += 1;
                backoff.pause(cpu).await;
            } else {
                let deadline = cpu.now() + 400;
                cpu.poll_until_deadline(self.tts, |v| v == FREE, deadline)
                    .await;
            }
            if cpu.read(self.mode).await != MODE_TTS {
                return None;
            }
        }
        let old = cpu.read(self.var).await;
        cpu.write(self.var, old.wrapping_add(delta)).await;
        let obs = if failures > TTS_RETRY_LIMIT {
            Observation::suboptimal(PROTO_TTS, PROTO_MP, 150.0)
        } else {
            Observation::optimal(PROTO_TTS)
        };
        match self.kernel.observe(&obs) {
            Some(target) => {
                self.kernel
                    .switch(&MpFopSwitch { f: self }, cpu, PROTO_TTS, target)
                    .await;
            }
            None => {
                cpu.write(self.tts, FREE).await;
            }
        }
        Some(old)
    }

    async fn try_central(&self, cpu: &Cpu, delta: u64) -> Option<u64> {
        let t0 = cpu.now();
        let old = self.central.try_fetch_add(cpu, delta).await.ok()?;
        let rtt = cpu.now() - t0;
        let obs = if rtt > RTT_HIGH {
            Observation::suboptimal(PROTO_MP, PROTO_MP_TREE, (rtt - RTT_HIGH) as f64)
        } else if rtt < RTT_LOW {
            let streak = self.calm_streak.get() + 1;
            self.calm_streak.set(streak);
            if streak > EMPTY_LIMIT {
                Observation::suboptimal(PROTO_MP, PROTO_TTS, 40.0)
            } else {
                Observation::optimal(PROTO_MP)
            }
        } else {
            self.calm_streak.set(0);
            Observation::optimal(PROTO_MP)
        };
        if let Some(target) = self.kernel.observe(&obs) {
            // Any completed requester may decide a change here, so the
            // attempt is fallible: the manager handler arbitrates
            // between concurrent changers, and a loser abandons its
            // stale decision (the winner owns the transition).
            let won = self
                .kernel
                .try_switch(&MpFopSwitch { f: self }, cpu, PROTO_MP, target)
                .await;
            if won && target == PROTO_TTS {
                cpu.write(self.tts, FREE).await;
            }
        }
        Some(old)
    }

    /// Tree-mode monitoring: sample the machine every so often by
    /// demoting when the tree's own round trips are fast (little
    /// combining → little contention).
    async fn note_tree_op(&self, cpu: &Cpu) {
        // Sample 1 op in 8 to keep monitoring cheap.
        if cpu.rand_below(8) != 0 {
            return;
        }
        let t0 = cpu.now();
        // A no-op fetch_add(0) probes the tree's latency end to end.
        if self.tree.try_fetch_add(cpu, 0).await.is_ok() {
            let rtt = cpu.now() - t0;
            let obs = if rtt < RTT_HIGH {
                Observation::suboptimal(PROTO_MP_TREE, PROTO_MP, 100.0)
            } else {
                Observation::optimal(PROTO_MP_TREE)
            };
            if let Some(target) = self.kernel.observe(&obs) {
                // Fallible for the same reason as `try_central`.
                let won = self
                    .kernel
                    .try_switch(&MpFopSwitch { f: self }, cpu, PROTO_MP_TREE, target)
                    .await;
                if won && target == PROTO_TTS {
                    cpu.write(self.tts, FREE).await;
                }
            }
        }
    }
}

/// The MP fetch-op's [`SwitchableObject`] hooks: all three consensus
/// objects carry the counter value, so `invalidate` captures it and
/// `validate` installs it (the kernel's Transfer discipline).
struct MpFopSwitch<'a> {
    f: &'a ReactiveMpFetchOp,
}

impl SwitchableObject for MpFopSwitch<'_> {
    type Ctx = Cpu;

    async fn validate(&self, cpu: &Cpu, to: ProtocolId, _from: ProtocolId, state: u64) {
        match to {
            PROTO_MP => self.f.central.validate_via(cpu, state).await,
            PROTO_MP_TREE => self.f.tree.validate_via(cpu, state).await,
            _ => cpu.write(self.f.var, state).await,
        }
    }

    async fn invalidate(&self, cpu: &Cpu, from: ProtocolId, _to: ProtocolId) -> Option<u64> {
        match from {
            // Leaving TTS: we hold the flag (and leave it pinned BUSY);
            // capturing the counter is a plain read under it, and the
            // hold makes the attempt exclusive.
            PROTO_TTS => Some(cpu.read(self.f.var).await),
            // Leaving an MP protocol: unlike the lock, *any* completed
            // requester may decide a change, so concurrent changers are
            // possible. The conditional-invalidate RPC arbitrates at
            // the manager handler (it IS the consensus object, §3.6):
            // exactly one changer captures the final value; the rest
            // observe the loss and abandon their stale decisions.
            PROTO_MP => self.f.central.try_invalidate_via(cpu).await,
            _ => self.f.tree.try_invalidate_via(cpu).await,
        }
    }

    async fn publish_mode(&self, cpu: &Cpu, to: ProtocolId) {
        cpu.write(self.f.mode, to.0 as u64).await;
    }

    fn now(&self, cpu: &Cpu) -> u64 {
        cpu.now()
    }

    fn note_switch(&self, cpu: &Cpu, from: ProtocolId, to: ProtocolId) {
        let name = match (from, to) {
            (PROTO_MP_TREE, PROTO_MP) => "reactive_mp_fop.tree_to_central",
            (PROTO_MP_TREE, _) => "reactive_mp_fop.tree_to_tts",
            (_, PROTO_MP) => "reactive_mp_fop.to_central",
            (_, PROTO_MP_TREE) => "reactive_mp_fop.to_tree",
            _ => "reactive_mp_fop.to_tts",
        };
        cpu.bump(name, 1);
    }

    fn reset_monitor(&self, to: ProtocolId) {
        if to == PROTO_MP {
            self.f.calm_streak.set(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Hysteresis, SwitchLog};
    use alewife_sim::Config;
    use std::cell::RefCell;

    #[test]
    fn mp_lock_mutual_exclusion_and_adaptation() {
        let m = Machine::new(Config::default().nodes(8));
        let lock = ReactiveMpLock::new(&m, 0, 0, 8);
        let shared = m.alloc_on(1, 1);
        for p in 0..8 {
            let cpu = m.cpu(p);
            let lock = lock.clone();
            m.spawn(p, async move {
                for _ in 0..25 {
                    let t = lock.acquire(&cpu).await;
                    let v = cpu.read(shared).await;
                    cpu.work(10).await;
                    cpu.write(shared, v + 1).await;
                    lock.release(&cpu, t).await;
                    cpu.work(cpu.rand_below(80)).await;
                }
            });
        }
        m.run();
        assert_eq!(m.live_tasks(), 0, "reactive MP lock deadlock");
        assert_eq!(m.read_word(shared), 200);
    }

    #[test]
    fn mp_lock_single_proc_stays_tts() {
        let m = Machine::new(Config::default().nodes(2));
        let lock = ReactiveMpLock::new(&m, 0, 1, 2);
        let cpu = m.cpu(0);
        let l2 = lock.clone();
        m.spawn(0, async move {
            for _ in 0..60 {
                let t = l2.acquire(&cpu).await;
                cpu.work(10).await;
                l2.release(&cpu, t).await;
                cpu.work(30).await;
            }
        });
        m.run();
        assert_eq!(lock.switches(), 0);
    }

    #[test]
    fn mp_lock_builder_policy_and_sink_are_honored() {
        let m = Machine::new(Config::default().nodes(8));
        let log = Rc::new(SwitchLog::new());
        // A huge hysteresis threshold: the policy must suppress every
        // switch the Always default would have taken.
        let lock = ReactiveMpLock::builder(&m, 0, 0)
            .max_procs(8)
            .policy(Hysteresis::new(1_000_000, 1_000_000))
            .instrument(log.clone())
            .build();
        let shared = m.alloc_on(1, 1);
        for p in 0..8 {
            let cpu = m.cpu(p);
            let lock = lock.clone();
            m.spawn(p, async move {
                for _ in 0..20 {
                    let t = lock.acquire(&cpu).await;
                    cpu.work(10).await;
                    cpu.fetch_and_add(shared, 1).await;
                    lock.release(&cpu, t).await;
                    cpu.work(cpu.rand_below(60)).await;
                }
            });
        }
        m.run();
        assert_eq!(m.live_tasks(), 0);
        assert_eq!(m.read_word(shared), 160);
        assert_eq!(lock.switches(), 0, "hysteresis(1M) must suppress switches");
        assert_eq!(log.count(), 0);
    }

    #[test]
    fn mp_fetch_op_linearizes_across_switches() {
        let m = Machine::new(Config::default().nodes(16));
        let f = ReactiveMpFetchOp::new(&m, 0, 0, 16);
        let seen = Rc::new(RefCell::new(Vec::new()));
        for p in 0..16 {
            let cpu = m.cpu(p);
            let f = f.clone();
            let seen = seen.clone();
            m.spawn(p, async move {
                for _ in 0..15 {
                    let v = f.fetch_add(&cpu, 1).await;
                    seen.borrow_mut().push(v);
                    cpu.work(cpu.rand_below(80)).await;
                }
            });
        }
        m.run();
        assert_eq!(m.live_tasks(), 0, "reactive MP fetch-op deadlock");
        let mut got = seen.borrow().clone();
        got.sort_unstable();
        assert_eq!(got, (0..240u64).collect::<Vec<_>>());
        assert_eq!(f.value(&m), 240);
    }

    #[test]
    fn mp_fetch_op_single_proc_stays_shared_memory() {
        let m = Machine::new(Config::default().nodes(2));
        let f = ReactiveMpFetchOp::new(&m, 0, 1, 2);
        let cpu = m.cpu(0);
        let f2 = f.clone();
        m.spawn(0, async move {
            for _ in 0..80 {
                f2.fetch_add(&cpu, 1).await;
                cpu.work(20).await;
            }
        });
        m.run();
        assert_eq!(f.switches(), 0);
        assert_eq!(f.value(&m), 80);
    }
}
