//! FibHeap — a heap behind one hot mutex (§4.6.2).
//!
//! Threads repeatedly insert into / extract from a shared priority
//! queue protected by a single mutex. Mutex waiting times are roughly
//! exponential with a heavy tail (Figure 4.10). The heap itself lives
//! host-side; the mutex, critical-section occupancy, and waiting are
//! fully simulated (the paper's result depends only on those).

use std::cell::RefCell;
use std::collections::BinaryHeap;
use std::rc::Rc;

use alewife_sim::{Config, Machine};

use crate::alg::{AnyWait, WaitAlg, WaitLock};
use crate::AppResult;

/// FibHeap configuration.
#[derive(Clone, Debug)]
pub struct FibHeapConfig {
    /// Number of processors (one worker thread each).
    pub procs: usize,
    /// Operations per processor.
    pub ops: u64,
    /// Waiting algorithm at the mutex.
    pub wait: WaitAlg,
    /// Mean think time between operations.
    pub think: u64,
    /// Random seed.
    pub seed: u64,
}

impl FibHeapConfig {
    /// A small default instance.
    pub fn small(procs: usize, wait: WaitAlg) -> FibHeapConfig {
        FibHeapConfig {
            procs,
            ops: 20,
            wait,
            think: 400,
            seed: 0xF1BB,
        }
    }
}

/// Run FibHeap; returns elapsed cycles and stats.
pub fn run(cfg: &FibHeapConfig) -> AppResult {
    let m = Machine::new(Config::default().nodes(cfg.procs).seed(cfg.seed));
    let lock = WaitLock::new(&m, 0);
    let heap: Rc<RefCell<BinaryHeap<u64>>> = Rc::new(RefCell::new(BinaryHeap::new()));
    let w = AnyWait::make(cfg.wait);

    for p in 0..cfg.procs {
        let cpu = m.cpu(p);
        let heap = heap.clone();
        let cfg = cfg.clone();
        m.spawn(p, async move {
            for i in 0..cfg.ops {
                lock.acquire(&cpu, &w).await;
                // Heap operation cost ~ log(size) memory touches.
                let size = heap.borrow().len() as u64;
                cpu.work(60 + 12 * (64 - size.leading_zeros() as u64)).await;
                if i % 2 == 0 {
                    heap.borrow_mut().push(cpu.rand_below(1_000));
                } else {
                    heap.borrow_mut().pop();
                }
                lock.release(&cpu).await;
                cpu.work(cpu.rand_below(2 * cfg.think.max(1))).await;
            }
        });
    }
    let elapsed = m.run();
    assert_eq!(m.live_tasks(), 0, "fibheap deadlock");
    AppResult {
        elapsed,
        stats: m.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_wait_algs_complete() {
        for w in [WaitAlg::Spin, WaitAlg::Block, WaitAlg::TwoPhase(465)] {
            let r = run(&FibHeapConfig::small(4, w));
            assert!(r.elapsed > 0, "{w:?}");
            assert!(r.stats.waits.contains_key("mutex"), "{w:?}");
        }
    }

    #[test]
    fn mutex_waits_have_spread() {
        let r = run(&FibHeapConfig::small(8, WaitAlg::Spin));
        let h = r.stats.waits.get("mutex").expect("mutex histogram");
        assert!(h.count >= 8 * 20);
        assert!(h.max > h.percentile(50.0), "no tail in waiting times");
    }
}
