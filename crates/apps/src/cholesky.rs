//! Cholesky — sparse Cholesky factorization (SPLASH, §3.5.6).
//!
//! Processors claim columns from a task counter; factoring a column
//! applies updates to a few destination columns, each guarded by a
//! per-column lock. Contention at any single lock is low (the paper's
//! point: the MCS lock's extra uncontended latency is negligible here).

use alewife_sim::{Config, Machine};

use crate::alg::{AnyLock, LockAlg};
use crate::AppResult;

/// Cholesky configuration.
#[derive(Clone, Debug)]
pub struct CholeskyConfig {
    /// Number of processors.
    pub procs: usize,
    /// Matrix columns.
    pub columns: usize,
    /// Lock algorithm for the column locks.
    pub alg: LockAlg,
    /// Random seed (generates the sparsity structure).
    pub seed: u64,
}

impl CholeskyConfig {
    /// A small default instance.
    pub fn small(procs: usize, alg: LockAlg) -> CholeskyConfig {
        CholeskyConfig {
            procs,
            columns: 24 * procs,
            alg,
            seed: 0xC401,
        }
    }
}

/// Run Cholesky; returns elapsed cycles and stats.
pub fn run(cfg: &CholeskyConfig) -> AppResult {
    let m = Machine::new(Config::default().nodes(cfg.procs).seed(cfg.seed));
    let n = cfg.columns;
    let col_locks: Vec<AnyLock> = (0..n)
        .map(|c| AnyLock::make(&m, c % cfg.procs, cfg.alg, cfg.procs))
        .collect();
    let col_data = m.alloc_on(0, n as u64);
    let next_col = m.alloc_on(1 % cfg.procs, 1);
    let updates_done = m.alloc_on(2 % cfg.procs, 1);

    for p in 0..cfg.procs {
        let cpu = m.cpu(p);
        let col_locks = col_locks.clone();
        let cfg = cfg.clone();
        m.spawn(p, async move {
            loop {
                let j = cpu.fetch_and_add(next_col, 1).await as usize;
                if j >= cfg.columns {
                    break;
                }
                // Factor column j (flops proportional to its height).
                cpu.work(400 + cpu.rand_below(800)).await;
                // Scatter updates into 2-4 later columns.
                let fanout = 2 + cpu.rand_below(3) as usize;
                for k in 0..fanout {
                    let dest = j + 1 + ((j * 7 + k * 13) % 11);
                    if dest >= cfg.columns {
                        continue;
                    }
                    let t = col_locks[dest].acquire(&cpu).await;
                    let v = cpu.read(col_data.plus(dest as u64)).await;
                    cpu.work(30).await;
                    cpu.write(col_data.plus(dest as u64), v + 1).await;
                    col_locks[dest].release(&cpu, t).await;
                    cpu.fetch_and_add(updates_done, 1).await;
                }
            }
        });
    }
    let elapsed = m.run();
    assert_eq!(m.live_tasks(), 0, "cholesky deadlock");
    assert!(m.read_word(updates_done) > 0, "no column updates applied");
    AppResult {
        elapsed,
        stats: m.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_with_tts() {
        assert!(run(&CholeskyConfig::small(4, LockAlg::Tts)).elapsed > 0);
    }

    #[test]
    fn runs_with_mcs() {
        assert!(run(&CholeskyConfig::small(4, LockAlg::Mcs)).elapsed > 0);
    }

    #[test]
    fn runs_with_reactive() {
        assert!(run(&CholeskyConfig::small(4, LockAlg::Reactive)).elapsed > 0);
    }
}
