//! MP3D — rarefied-fluid-flow particle simulation (SPLASH, §3.5.6).
//!
//! With locking enabled, MP3D takes a lock per cell update (many locks,
//! each low contention) and one lock for the end-of-iteration collision
//! counts (hot when the load is balanced) — the exact mix where the
//! reactive lock picks TTS for the cells and the queue for the
//! collision lock.

use alewife_sim::{Config, Machine};
use sync_protocols::barrier::{BarrierCtx, SenseBarrier};
use sync_protocols::waiting::AlwaysSpin;

use crate::alg::{AnyLock, LockAlg};
use crate::AppResult;

/// MP3D configuration.
#[derive(Clone, Debug)]
pub struct Mp3dConfig {
    /// Number of processors.
    pub procs: usize,
    /// Particles per processor.
    pub particles_per_proc: u64,
    /// Simulation iterations (the paper measures 5).
    pub iterations: u64,
    /// Lock algorithm for cell + collision locks.
    pub alg: LockAlg,
    /// Random seed.
    pub seed: u64,
}

impl Mp3dConfig {
    /// A small default instance.
    pub fn small(procs: usize, alg: LockAlg) -> Mp3dConfig {
        Mp3dConfig {
            procs,
            particles_per_proc: 12,
            iterations: 3,
            alg,
            seed: 0x3D3D,
        }
    }
}

/// Run MP3D; returns elapsed cycles and stats.
pub fn run(cfg: &Mp3dConfig) -> AppResult {
    let m = Machine::new(Config::default().nodes(cfg.procs).seed(cfg.seed));
    let cells = cfg.procs * 4;
    let cell_locks: Vec<AnyLock> = (0..cells)
        .map(|c| AnyLock::make(&m, c % cfg.procs, cfg.alg, cfg.procs))
        .collect();
    let cell_data = m.alloc_on(0, cells as u64);
    let collision_lock = AnyLock::make(&m, 0, cfg.alg, cfg.procs);
    let collisions = m.alloc_on(1, 1);
    let bar = SenseBarrier::new(&m, 0, cfg.procs as u64);

    for p in 0..cfg.procs {
        let cpu = m.cpu(p);
        let cell_locks = cell_locks.clone();
        let collision_lock = collision_lock.clone();
        let cfg = cfg.clone();
        m.spawn(p, async move {
            let mut bctx = BarrierCtx::default();
            for iter in 0..cfg.iterations {
                for part in 0..cfg.particles_per_proc {
                    // Move the particle.
                    cpu.work(80 + cpu.rand_below(120)).await;
                    // Update its destination cell under that cell's lock
                    // (low contention: many cells).
                    let c = ((p as u64 * 31 + part * 7 + iter * 13) % cells as u64) as usize;
                    let t = cell_locks[c].acquire(&cpu).await;
                    let v = cpu.read(cell_data.plus(c as u64)).await;
                    cpu.work(20).await;
                    cpu.write(cell_data.plus(c as u64), v + 1).await;
                    cell_locks[c].release(&cpu, t).await;
                }
                // End of iteration: everyone updates the collision
                // counter under one lock (high contention).
                let t = collision_lock.acquire(&cpu).await;
                let v = cpu.read(collisions).await;
                cpu.work(30).await;
                cpu.write(collisions, v + 1).await;
                collision_lock.release(&cpu, t).await;
                bar.wait(&cpu, &mut bctx, &AlwaysSpin).await;
            }
        });
    }
    let elapsed = m.run();
    assert_eq!(m.live_tasks(), 0, "mp3d deadlock");
    assert_eq!(
        m.read_word(collisions),
        cfg.procs as u64 * cfg.iterations,
        "collision updates lost"
    );
    AppResult {
        elapsed,
        stats: m.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_with_tts() {
        assert!(run(&Mp3dConfig::small(4, LockAlg::Tts)).elapsed > 0);
    }

    #[test]
    fn runs_with_mcs() {
        assert!(run(&Mp3dConfig::small(4, LockAlg::Mcs)).elapsed > 0);
    }

    #[test]
    fn runs_with_reactive() {
        assert!(run(&Mp3dConfig::small(8, LockAlg::Reactive)).elapsed > 0);
    }
}
