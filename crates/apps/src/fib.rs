//! Fib — Fibonacci with futures (§4.6.2).
//!
//! The classic future-parallel Fibonacci: each call spawns children as
//! futures and touches them. Touch waiting times are short and roughly
//! exponential (Figure 4.7), making this a producer-consumer benchmark
//! for the waiting algorithms.

use alewife_sim::{Config, Cpu, Machine};
use sync_protocols::pc::FutureCell;

use crate::alg::{AnyWait, WaitAlg};
use crate::AppResult;

/// Fib configuration.
#[derive(Clone, Debug)]
pub struct FibConfig {
    /// Number of processors.
    pub procs: usize,
    /// Fibonacci argument (call tree has ~fib(n) leaves).
    pub n: u32,
    /// Sequential cutoff (below this, compute inline).
    pub cutoff: u32,
    /// Waiting algorithm for touches.
    pub wait: WaitAlg,
    /// Random seed.
    pub seed: u64,
}

impl FibConfig {
    /// A small default instance.
    pub fn small(procs: usize, wait: WaitAlg) -> FibConfig {
        FibConfig {
            procs,
            n: 10,
            cutoff: 4,
            wait,
            seed: 0xF1B0,
        }
    }
}

fn fib_exact(n: u32) -> u64 {
    let (mut a, mut b) = (0u64, 1u64);
    for _ in 0..n {
        let c = a + b;
        a = b;
        b = c;
    }
    a
}

fn fib_task(
    cpu: Cpu,
    w: AnyWait,
    n: u32,
    cutoff: u32,
    procs: usize,
    out: FutureCell,
) -> std::pin::Pin<Box<dyn std::future::Future<Output = ()>>> {
    Box::pin(async move {
        if n < cutoff {
            // Sequential leaf: cycles proportional to the subtree.
            cpu.work(60 * (fib_exact(n).max(1))).await;
            out.determine(&cpu, fib_exact(n)).await;
            return;
        }
        cpu.work(120).await; // spawn overhead / stack frame
        let child_node = (cpu.node() + 1 + (n as usize % 3)) % procs;
        let f1 = FutureCell::new_on_cpu(&cpu, child_node);
        cpu.spawn(
            child_node,
            fib_task(cpu.on(child_node), w, n - 1, cutoff, procs, f1),
        );
        let f2 = FutureCell::new_on_cpu(&cpu, cpu.node());
        cpu.spawn(
            cpu.node(),
            fib_task(cpu.clone(), w, n - 2, cutoff, procs, f2),
        );
        let a = f1.touch(&cpu, &w).await;
        let b = f2.touch(&cpu, &w).await;
        out.determine(&cpu, a + b).await;
    })
}

/// Run Fib; returns elapsed cycles and stats (asserts fib(n) is right).
///
/// Pure spinning is mapped to switch-spinning: a parent that spin-waits
/// for a child scheduled on its own (non-preemptive) processor would
/// deadlock (§2.2.4); Alewife's futures poll by switch-spinning.
pub fn run(cfg: &FibConfig) -> AppResult {
    let m = Machine::new(Config::default().nodes(cfg.procs).seed(cfg.seed));
    let w = AnyWait::make(match cfg.wait {
        WaitAlg::Spin => WaitAlg::SwitchSpin,
        other => other,
    });
    let result = m.alloc_on(0, 1);
    let root = FutureCell::new(&m, 0);
    let (n, cutoff, procs) = (cfg.n, cfg.cutoff, cfg.procs);
    {
        let cpu = m.cpu(0);
        m.spawn(0, async move {
            cpu.spawn(0, fib_task(cpu.clone(), w, n, cutoff, procs, root));
            let v = root.touch(&cpu, &w).await;
            cpu.write(result, v).await;
        });
    }
    let elapsed = m.run();
    assert_eq!(m.live_tasks(), 0, "fib deadlock");
    assert_eq!(m.read_word(result), fib_exact(cfg.n), "wrong fibonacci");
    AppResult {
        elapsed,
        stats: m.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fib_exact_sanity() {
        assert_eq!(fib_exact(10), 55);
        assert_eq!(fib_exact(0), 0);
        assert_eq!(fib_exact(1), 1);
    }

    #[test]
    fn all_wait_algs_compute_fib() {
        for w in [WaitAlg::Spin, WaitAlg::Block, WaitAlg::TwoPhase(465)] {
            let r = run(&FibConfig::small(4, w));
            assert!(r.elapsed > 0, "{w:?}");
            assert!(r.stats.waits.contains_key("future"), "{w:?}");
        }
    }

    #[test]
    fn single_proc_works() {
        let r = run(&FibConfig::small(1, WaitAlg::TwoPhase(465)));
        assert!(r.elapsed > 0);
    }
}
