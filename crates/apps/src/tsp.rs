//! TSP — branch-and-bound traveling salesman (§3.5.6).
//!
//! Processes extract partially explored tours from a global concurrent
//! queue and expand them, inserting children back. The queue is the
//! Rudolph-style array queue the paper cites: head/tail indices are
//! claimed with **fetch-and-increment** (the measured synchronization
//! object) and array slots carry full/empty bits so a popper that
//! claimed a not-yet-filled slot waits for its producer. As in the
//! paper, the best-tour bound is seeded with the optimum so the search
//! does a deterministic amount of work.

use std::cell::RefCell;
use std::rc::Rc;

use alewife_sim::{Config, Machine};

use crate::alg::{AnyFetchOp, FetchOpAlg};
use crate::AppResult;

/// TSP configuration.
#[derive(Clone, Debug)]
pub struct TspConfig {
    /// Number of processors.
    pub procs: usize,
    /// Number of cities (the paper used 11; 8-9 keeps sims quick).
    pub cities: usize,
    /// Fetch-and-op algorithm for the queue indices.
    pub alg: FetchOpAlg,
    /// Random seed (generates the distance matrix).
    pub seed: u64,
}

impl TspConfig {
    /// A small default instance.
    pub fn small(procs: usize, alg: FetchOpAlg) -> TspConfig {
        TspConfig {
            procs,
            cities: 8,
            alg,
            seed: 0x7539,
        }
    }
}

#[derive(Clone, Debug)]
struct Tour {
    visited_mask: u32,
    last: usize,
    cost: u64,
}

// Index loops fill both triangles of the symmetric matrix at once.
#[allow(clippy::needless_range_loop)]
fn dist_matrix(cities: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        s.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let mut d = vec![vec![0u64; cities]; cities];
    for i in 0..cities {
        for j in (i + 1)..cities {
            let w = 10 + next() % 90;
            d[i][j] = w;
            d[j][i] = w;
        }
    }
    d
}

/// Exact optimum by Held-Karp (host-side; used to seed the bound).
fn held_karp(d: &[Vec<u64>]) -> u64 {
    let n = d.len();
    let full = (1u32 << n) - 1;
    let mut dp = vec![vec![u64::MAX; n]; 1 << n];
    dp[1][0] = 0;
    for mask in 1..=full {
        if mask & 1 == 0 {
            continue;
        }
        for last in 0..n {
            if mask & (1 << last) == 0 || dp[mask as usize][last] == u64::MAX {
                continue;
            }
            for next in 0..n {
                if mask & (1 << next) != 0 {
                    continue;
                }
                let nm = (mask | (1 << next)) as usize;
                let c = dp[mask as usize][last] + d[last][next];
                if c < dp[nm][next] {
                    dp[nm][next] = c;
                }
            }
        }
    }
    (1..n)
        .map(|last| dp[full as usize][last].saturating_add(d[last][0]))
        .min()
        .unwrap_or(0)
}

/// Run TSP; returns elapsed cycles and stats (the run asserts that the
/// search rediscovers the seeded optimum).
pub fn run(cfg: &TspConfig) -> AppResult {
    assert!(cfg.cities <= 16, "keep the instance small");
    let d = Rc::new(dist_matrix(cfg.cities, cfg.seed));
    let best = held_karp(&d);

    let m = Machine::new(Config::default().nodes(cfg.procs).seed(cfg.seed));
    // The concurrent queue: slots with full/empty bits + two indices.
    let cap = 1usize << 16;
    let slots = m.alloc_on(0, cap as u64); // striped? keep homed at 0: index traffic dominates
    let head = AnyFetchOp::make(&m, 0, cfg.alg, cfg.procs);
    let tail = AnyFetchOp::make(&m, 0, cfg.alg, cfg.procs);
    // Outstanding-work counter for termination, and a done flag.
    let outstanding = m.alloc_on(1 % cfg.procs, 1);
    let done = m.alloc_on(2 % cfg.procs, 1);
    let found_opt = m.alloc_on(3 % cfg.procs, 1);

    // Tour bodies live host-side, indexed by queue slot value - 1.
    let tours: Rc<RefCell<Vec<Tour>>> = Rc::new(RefCell::new(vec![Tour {
        visited_mask: 1,
        last: 0,
        cost: 0,
    }]));
    m.write_word(outstanding, 1);
    // Push the root tour into slot 0.
    m.write_word(slots, 1);
    m.set_full(slots, true);
    // Tail starts at 1 (one item pushed), head at 0: seed the counters.
    // (AnyFetchOp counters all start at 0, so pre-increment tail.)
    {
        let cpu = m.cpu(0);
        let tail = tail.clone();
        m.spawn(0, async move {
            tail.fetch_add(&cpu, 1).await;
        });
        m.run();
    }

    let n = cfg.cities;
    for p in 0..cfg.procs {
        let cpu = m.cpu(p);
        let (head, tail) = (head.clone(), tail.clone());
        let (d, tours) = (d.clone(), tours.clone());
        m.spawn(p, async move {
            'outer: loop {
                // Claim a slot only when items look available.
                loop {
                    if cpu.read(done).await == 1 {
                        break 'outer;
                    }
                    let h = cpu.read_snapshot_pair(&head, &tail).await;
                    if h.0 < h.1 {
                        break;
                    }
                    cpu.work(100).await;
                }
                let i = head.fetch_add(&cpu, 1).await as usize;
                // Wait for the slot to fill (bounded, re-checking done).
                let item = loop {
                    let deadline = cpu.now() + 2_000;
                    if let Some(v) = cpu
                        .poll_until_full_deadline(slots.plus(i as u64), deadline)
                        .await
                    {
                        break v;
                    }
                    if cpu.read(done).await == 1 {
                        break 'outer;
                    }
                };
                let t = tours.borrow()[(item - 1) as usize].clone();
                // Expand: try all unvisited cities.
                cpu.work(300 + cpu.rand_below(200)).await;
                let mut children = 0u64;
                for next in 1..n {
                    if t.visited_mask & (1 << next) != 0 {
                        continue;
                    }
                    let cost = t.cost + d[t.last][next];
                    // Simple bound: remaining cities each cost ≥ 10.
                    let remaining = (n as u32 - (t.visited_mask | 1 << next).count_ones()) as u64;
                    if cost + remaining * 10 > best {
                        continue; // pruned
                    }
                    let child_mask = t.visited_mask | 1 << next;
                    if child_mask == (1u32 << n) - 1 {
                        let total = cost + d[next][0];
                        if total == best {
                            cpu.write(found_opt, 1).await;
                        }
                        continue;
                    }
                    // Push the child.
                    let id = {
                        let mut ts = tours.borrow_mut();
                        ts.push(Tour {
                            visited_mask: child_mask,
                            last: next,
                            cost,
                        });
                        ts.len() as u64
                    };
                    cpu.fetch_and_add(outstanding, 1).await;
                    let j = tail.fetch_add(&cpu, 1).await;
                    assert!((j as usize) < cap, "tsp queue overflow");
                    cpu.write_fill(slots.plus(j), id).await;
                    children += 1;
                }
                let _ = children;
                // This item is finished.
                let prev = cpu.fetch_and_add(outstanding, u64::MAX).await; // -1
                if prev == 1 {
                    cpu.write(done, 1).await;
                }
            }
        });
    }
    let elapsed = m.run();
    assert_eq!(m.live_tasks(), 0, "tsp deadlock");
    assert_eq!(m.read_word(found_opt), 1, "optimum not rediscovered");
    AppResult {
        elapsed,
        stats: m.stats(),
    }
}

/// Helper trait so the worker can snapshot the two index counters
/// without disturbing them (plain reads of their backing state would
/// break the protocol abstraction, so we read via zero adds).
trait SnapshotPair {
    async fn read_snapshot_pair(&self, head: &AnyFetchOp, tail: &AnyFetchOp) -> (u64, u64);
}

impl SnapshotPair for alewife_sim::Cpu {
    async fn read_snapshot_pair(&self, head: &AnyFetchOp, tail: &AnyFetchOp) -> (u64, u64) {
        let h = head.fetch_add(self, 0).await;
        let t = tail.fetch_add(self, 0).await;
        (h, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn held_karp_small_sanity() {
        // Triangle with equal weights: tour cost = 3 edges.
        let d = vec![vec![0, 10, 10], vec![10, 0, 10], vec![10, 10, 0]];
        assert_eq!(held_karp(&d), 30);
    }

    #[test]
    fn solves_with_queue_lock() {
        let r = run(&TspConfig::small(4, FetchOpAlg::QueueLock));
        assert!(r.elapsed > 0);
    }

    #[test]
    fn solves_with_reactive() {
        let r = run(&TspConfig::small(4, FetchOpAlg::Reactive));
        assert!(r.elapsed > 0);
    }

    #[test]
    fn solves_single_proc() {
        let r = run(&TspConfig::small(1, FetchOpAlg::TtsLock));
        assert!(r.elapsed > 0);
    }
}
