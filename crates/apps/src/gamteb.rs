//! Gamteb — Monte Carlo photon transport (§3.5.6).
//!
//! The paper's Gamteb updates nine interaction counters with
//! fetch-and-increment; on 128 processors one counter becomes hot enough
//! to warrant a combining tree while the other eight favour the
//! queue-based protocol — exactly the per-object mixed contention that
//! motivates reactive selection. This miniature keeps that signature:
//! particles are statically partitioned, each particle undergoes a few
//! interaction steps, and each step bumps one of nine counters with a
//! skewed distribution (counter 0 takes ≈ 45% of the traffic).

use alewife_sim::{Config, Machine};

use crate::alg::{AnyFetchOp, FetchOpAlg};
use crate::AppResult;

/// Gamteb configuration.
#[derive(Clone, Debug)]
pub struct GamtebConfig {
    /// Number of processors.
    pub procs: usize,
    /// Number of particles to transport.
    pub particles: u64,
    /// Fetch-and-op algorithm for the interaction counters.
    pub alg: FetchOpAlg,
    /// Random seed.
    pub seed: u64,
}

impl GamtebConfig {
    /// A small default problem (scaled-down from the paper's 2048
    /// particles to keep simulations quick).
    pub fn small(procs: usize, alg: FetchOpAlg) -> GamtebConfig {
        GamtebConfig {
            procs,
            particles: 4 * procs as u64,
            alg,
            seed: 0xBEEF,
        }
    }
}

/// Number of interaction counters (fixed by the original program).
pub const COUNTERS: usize = 9;

/// Run Gamteb; returns elapsed cycles and stats. The final counter sums
/// are checked internally against the expected interaction count.
pub fn run(cfg: &GamtebConfig) -> AppResult {
    let m = Machine::new(Config::default().nodes(cfg.procs).seed(cfg.seed));
    let counters: Vec<AnyFetchOp> = (0..COUNTERS)
        .map(|i| AnyFetchOp::make(&m, i % cfg.procs, cfg.alg, cfg.procs))
        .collect();
    let total = m.alloc_on(0, 1);

    for p in 0..cfg.procs {
        let cpu = m.cpu(p);
        let counters = counters.clone();
        let mine = cfg.particles / cfg.procs as u64
            + u64::from((cfg.particles % cfg.procs as u64) > p as u64);
        m.spawn(p, async move {
            let mut bumped = 0u64;
            for _ in 0..mine {
                // A particle undergoes 2-5 interaction steps.
                let steps = 2 + cpu.rand_below(4);
                for _ in 0..steps {
                    // Transport: cross-section lookup + geometry.
                    cpu.work(150 + cpu.rand_below(300)).await;
                    // Skewed counter choice: counter 0 is hot.
                    let r = cpu.rand_below(100);
                    let c = if r < 45 {
                        0
                    } else {
                        1 + (cpu.rand_below((COUNTERS - 1) as u64) as usize)
                    };
                    counters[c].fetch_add(&cpu, 1).await;
                    bumped += 1;
                }
            }
            cpu.fetch_and_add(total, bumped).await;
        });
    }
    let elapsed = m.run();
    assert_eq!(m.live_tasks(), 0, "gamteb deadlock");
    assert!(m.read_word(total) >= 2 * cfg.particles, "lost interactions");
    AppResult {
        elapsed,
        stats: m.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_with_queue_lock_counters() {
        let r = run(&GamtebConfig::small(4, FetchOpAlg::QueueLock));
        assert!(r.elapsed > 0);
    }

    #[test]
    fn runs_with_combining_counters() {
        let r = run(&GamtebConfig::small(4, FetchOpAlg::Combining));
        assert!(r.elapsed > 0);
    }

    #[test]
    fn runs_with_reactive_counters() {
        let r = run(&GamtebConfig::small(8, FetchOpAlg::Reactive));
        assert!(r.elapsed > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(&GamtebConfig::small(4, FetchOpAlg::Reactive)).elapsed;
        let b = run(&GamtebConfig::small(4, FetchOpAlg::Reactive)).elapsed;
        assert_eq!(a, b);
    }
}
