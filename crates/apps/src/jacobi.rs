//! Jacobi — iterative grid relaxation (§4.6.2).
//!
//! Two variants matching the paper's benchmarks:
//!
//! * [`run_jstructures`] (the paper's *Jacobi*): rows are partitioned;
//!   after computing its block each processor publishes its boundary
//!   rows through per-iteration J-structure slots that neighbours read —
//!   producer-consumer waiting (Figure 4.6's waiting-time profile).
//! * [`run_barrier`] (the paper's *Jacobi-Bar*): the same computation
//!   separated by barriers instead (Figure 4.8's barrier waits).

use alewife_sim::{Config, Machine};
use sync_protocols::barrier::{BarrierCtx, SenseBarrier};
use sync_protocols::pc::JStructure;

use crate::alg::{AnyWait, WaitAlg};
use crate::AppResult;

/// Jacobi configuration.
#[derive(Clone, Debug)]
pub struct JacobiConfig {
    /// Number of processors.
    pub procs: usize,
    /// Relaxation iterations.
    pub iterations: usize,
    /// Compute cycles per processor per iteration (base).
    pub grain: u64,
    /// Load imbalance: extra random cycles up to this bound.
    pub skew: u64,
    /// Waiting algorithm.
    pub wait: WaitAlg,
    /// Random seed.
    pub seed: u64,
}

impl JacobiConfig {
    /// A small default instance.
    pub fn small(procs: usize, wait: WaitAlg) -> JacobiConfig {
        JacobiConfig {
            procs,
            iterations: 6,
            grain: 2_000,
            skew: 1_500,
            wait,
            seed: 0x1ACB,
        }
    }
}

/// J-structure variant: neighbours exchange boundary rows.
pub fn run_jstructures(cfg: &JacobiConfig) -> AppResult {
    let m = Machine::new(Config::default().nodes(cfg.procs).seed(cfg.seed));
    // One slot per (iteration, proc, side): publish down-edge and
    // up-edge values each iteration.
    let slots = JStructure::new(&m, cfg.iterations * cfg.procs * 2);
    let w = AnyWait::make(cfg.wait);
    let procs = cfg.procs;

    for p in 0..procs {
        let cpu = m.cpu(p);
        let slots = slots.clone();
        let cfg = cfg.clone();
        m.spawn(p, async move {
            for it in 0..cfg.iterations {
                // Relax the interior of our block.
                cpu.work(cfg.grain + cpu.rand_below(cfg.skew.max(1))).await;
                // Publish our boundary rows for this iteration.
                let base = (it * procs + p) * 2;
                slots.write(&cpu, base, (p + it) as u64 + 1).await;
                slots.write(&cpu, base + 1, (p + it) as u64 + 1).await;
                // Read the neighbours' boundaries (wrap-around).
                let up = (p + procs - 1) % procs;
                let down = (p + 1) % procs;
                let v1 = slots.read(&cpu, &w, (it * procs + up) * 2 + 1).await;
                let v2 = slots.read(&cpu, &w, (it * procs + down) * 2).await;
                assert!(v1 > 0 && v2 > 0);
            }
        });
    }
    let elapsed = m.run();
    assert_eq!(m.live_tasks(), 0, "jacobi deadlock");
    AppResult {
        elapsed,
        stats: m.stats(),
    }
}

/// Barrier variant (Jacobi-Bar).
pub fn run_barrier(cfg: &JacobiConfig) -> AppResult {
    let m = Machine::new(Config::default().nodes(cfg.procs).seed(cfg.seed));
    let bar = SenseBarrier::new(&m, 0, cfg.procs as u64);
    let w = AnyWait::make(cfg.wait);

    for p in 0..cfg.procs {
        let cpu = m.cpu(p);
        let cfg = cfg.clone();
        m.spawn(p, async move {
            let mut bctx = BarrierCtx::default();
            for _ in 0..cfg.iterations {
                cpu.work(cfg.grain + cpu.rand_below(cfg.skew.max(1))).await;
                bar.wait(&cpu, &mut bctx, &w).await;
            }
        });
    }
    let elapsed = m.run();
    assert_eq!(m.live_tasks(), 0, "jacobi-bar deadlock");
    AppResult {
        elapsed,
        stats: m.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jstructures_all_wait_algs() {
        for w in [WaitAlg::Spin, WaitAlg::Block, WaitAlg::TwoPhase(465)] {
            let r = run_jstructures(&JacobiConfig::small(4, w));
            assert!(r.elapsed > 0, "{w:?}");
            assert!(r.stats.waits.contains_key("jstruct"), "{w:?}");
        }
    }

    #[test]
    fn barrier_all_wait_algs() {
        for w in [WaitAlg::Spin, WaitAlg::Block, WaitAlg::TwoPhase(465)] {
            let r = run_barrier(&JacobiConfig::small(4, w));
            assert!(r.elapsed > 0, "{w:?}");
            assert!(r.stats.waits.contains_key("barrier"), "{w:?}");
        }
    }

    #[test]
    fn deterministic() {
        let a = run_jstructures(&JacobiConfig::small(4, WaitAlg::TwoPhase(465))).elapsed;
        let b = run_jstructures(&JacobiConfig::small(4, WaitAlg::TwoPhase(465))).elapsed;
        assert_eq!(a, b);
    }
}
