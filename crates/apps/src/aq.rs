//! AQ — adaptive quadrature (§3.5.6, §4.6.2).
//!
//! Numerical integration by recursive interval subdivision. Two variants
//! matching the paper's uses:
//!
//! * [`run_queue`] — Chapter 3's version: a global work queue of ranges
//!   synchronized with fetch-and-increment (same queue as TSP, but with
//!   larger grain sizes, hence lower index contention).
//! * [`run_futures`] — Chapter 4's version: recursive futures; touching
//!   an undetermined future exercises the waiting algorithm
//!   (exponentially-flavoured waiting times, Figure 4.7).

use std::cell::RefCell;
use std::rc::Rc;

use alewife_sim::{Config, Machine};
use sync_protocols::pc::FutureCell;

use crate::alg::{AnyFetchOp, AnyWait, FetchOpAlg, WaitAlg};
use crate::AppResult;

/// AQ configuration.
#[derive(Clone, Debug)]
pub struct AqConfig {
    /// Number of processors.
    pub procs: usize,
    /// Maximum subdivision depth (work ≈ 2^depth leaf evaluations).
    pub depth: u32,
    /// Fetch-and-op algorithm (queue variant).
    pub alg: FetchOpAlg,
    /// Waiting algorithm (futures variant).
    pub wait: WaitAlg,
    /// Random seed.
    pub seed: u64,
}

impl AqConfig {
    /// A small default instance.
    pub fn small(procs: usize, alg: FetchOpAlg, wait: WaitAlg) -> AqConfig {
        AqConfig {
            procs,
            depth: 6,
            alg,
            wait,
            seed: 0xACE5,
        }
    }
}

/// Decide (deterministically) whether an interval needs subdividing:
/// models the error estimate of the oscillatory integrand.
fn needs_split(id: u64, depth: u32, max_depth: u32) -> bool {
    if depth >= max_depth {
        return false;
    }
    // Most intervals split near the root; fewer as depth grows.
    let h = id
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(depth * 7);
    (h % 100) < (95u64.saturating_sub(8 * depth as u64))
}

/// Queue-based AQ; ranges are heavier grains than TSP tours.
pub fn run_queue(cfg: &AqConfig) -> AppResult {
    let m = Machine::new(Config::default().nodes(cfg.procs).seed(cfg.seed));
    let cap = 1usize << 16;
    let slots = m.alloc_on(0, cap as u64);
    let head = AnyFetchOp::make(&m, 0, cfg.alg, cfg.procs);
    let tail = AnyFetchOp::make(&m, 0, cfg.alg, cfg.procs);
    let outstanding = m.alloc_on(1 % cfg.procs, 1);
    let done = m.alloc_on(2 % cfg.procs, 1);
    let leaves = m.alloc_on(3 % cfg.procs, 1);

    // Item encoding: (id << 8) | depth, id 1-based at push time.
    m.write_word(outstanding, 1);
    m.write_word(slots, 1 << 8);
    m.set_full(slots, true);
    {
        let cpu = m.cpu(0);
        let tail = tail.clone();
        m.spawn(0, async move {
            tail.fetch_add(&cpu, 1).await;
        });
        m.run();
    }

    let max_depth = cfg.depth;
    let next_id = Rc::new(RefCell::new(2u64));
    for p in 0..cfg.procs {
        let cpu = m.cpu(p);
        let (head, tail) = (head.clone(), tail.clone());
        let next_id = next_id.clone();
        m.spawn(p, async move {
            'outer: loop {
                loop {
                    if cpu.read(done).await == 1 {
                        break 'outer;
                    }
                    let h = head.fetch_add(&cpu, 0).await;
                    let t = tail.fetch_add(&cpu, 0).await;
                    if h < t {
                        break;
                    }
                    cpu.work(150).await;
                }
                let i = head.fetch_add(&cpu, 1).await as usize;
                let item = loop {
                    let deadline = cpu.now() + 2_500;
                    if let Some(v) = cpu
                        .poll_until_full_deadline(slots.plus(i as u64), deadline)
                        .await
                    {
                        break v;
                    }
                    if cpu.read(done).await == 1 {
                        break 'outer;
                    }
                };
                let (id, depth) = (item >> 8, (item & 0xFF) as u32);
                // Evaluate the integrand on this range: heavy grain.
                cpu.work(800 + cpu.rand_below(600)).await;
                if needs_split(id, depth, max_depth) {
                    for _ in 0..2 {
                        let child = {
                            let mut n = next_id.borrow_mut();
                            let c = *n;
                            *n += 1;
                            c
                        };
                        cpu.fetch_and_add(outstanding, 1).await;
                        let j = tail.fetch_add(&cpu, 1).await;
                        assert!((j as usize) < cap, "aq queue overflow");
                        cpu.write_fill(slots.plus(j), (child << 8) | (depth as u64 + 1))
                            .await;
                    }
                } else {
                    cpu.fetch_and_add(leaves, 1).await;
                }
                let prev = cpu.fetch_and_add(outstanding, u64::MAX).await;
                if prev == 1 {
                    cpu.write(done, 1).await;
                }
            }
        });
    }
    let elapsed = m.run();
    assert_eq!(m.live_tasks(), 0, "aq deadlock");
    assert!(m.read_word(leaves) > 0, "no leaves evaluated");
    AppResult {
        elapsed,
        stats: m.stats(),
    }
}

/// Future-based AQ: a recursive divide-and-conquer where each split
/// spawns a child thread whose result is a future the parent touches.
///
/// Pure spinning is mapped to switch-spinning here: on a non-preemptive
/// node a parent that spin-waits for a child *scheduled on the same
/// processor* deadlocks (§2.2.4) — the polling mechanism for futures on
/// Alewife is switch-spinning for exactly this reason.
pub fn run_futures(cfg: &AqConfig) -> AppResult {
    let m = Machine::new(Config::default().nodes(cfg.procs).seed(cfg.seed));
    let result = m.alloc_on(0, 1);
    let w = AnyWait::make(match cfg.wait {
        WaitAlg::Spin => WaitAlg::SwitchSpin,
        other => other,
    });
    let procs = cfg.procs;
    let max_depth = cfg.depth.min(7);

    // Recursive async via explicit boxing.
    fn eval(
        m_nodes: usize,
        cpu: alewife_sim::Cpu,
        w: AnyWait,
        id: u64,
        depth: u32,
        max_depth: u32,
        out: FutureCell,
    ) -> std::pin::Pin<Box<dyn std::future::Future<Output = ()>>> {
        Box::pin(async move {
            cpu.work(400 + cpu.rand_below(300)).await;
            if !needs_split(id, depth, max_depth) {
                out.determine(&cpu, 1).await;
                return;
            }
            // Spawn the left half on another node; do the right here.
            let left_node = (cpu.node() + (1 << depth)) % m_nodes;
            let left = FutureCell::new_on_cpu(&cpu, left_node);
            let lcpu = cpu.on(left_node);
            cpu.spawn(
                left_node,
                eval(m_nodes, lcpu, w, id * 2, depth + 1, max_depth, left),
            );
            let right = FutureCell::new_on_cpu(&cpu, cpu.node());
            let rcpu = cpu.clone();
            cpu.spawn(
                cpu.node(),
                eval(m_nodes, rcpu, w, id * 2 + 1, depth + 1, max_depth, right),
            );
            let a = left.touch(&cpu, &w).await;
            let b = right.touch(&cpu, &w).await;
            out.determine(&cpu, a + b).await;
        })
    }

    let root = FutureCell::new(&m, 0);
    {
        let cpu = m.cpu(0);
        let w2 = w;
        m.spawn(0, async move {
            let root2 = root;
            cpu.spawn(0, eval(procs, cpu.clone(), w2, 1, 0, max_depth, root2));
            let v = root2.touch(&cpu, &w2).await;
            cpu.write(result, v).await;
        });
    }
    let elapsed = m.run();
    assert_eq!(m.live_tasks(), 0, "aq-futures deadlock");
    assert!(m.read_word(result) > 0, "no result determined");
    AppResult {
        elapsed,
        stats: m.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_variant_runs() {
        let r = run_queue(&AqConfig::small(4, FetchOpAlg::QueueLock, WaitAlg::Spin));
        assert!(r.elapsed > 0);
    }

    #[test]
    fn queue_variant_reactive() {
        let r = run_queue(&AqConfig::small(4, FetchOpAlg::Reactive, WaitAlg::Spin));
        assert!(r.elapsed > 0);
    }

    #[test]
    fn futures_variant_spin() {
        let r = run_futures(&AqConfig::small(4, FetchOpAlg::TtsLock, WaitAlg::Spin));
        assert!(r.elapsed > 0);
        assert!(r.stats.waits.contains_key("future"));
    }

    #[test]
    fn futures_variant_two_phase() {
        let r = run_futures(&AqConfig::small(
            4,
            FetchOpAlg::TtsLock,
            WaitAlg::TwoPhase(465),
        ));
        assert!(r.elapsed > 0);
    }
}
