//! CountNet — a bitonic counting network (§4.6.2).
//!
//! Each balancer is a toggle bit behind a small mutex; processes
//! traverse the network flipping balancers and finally bump a per-wire
//! counter. Balancer critical sections are tiny, so mutex waiting times
//! are very short (Figure 4.11) — the regime where always-blocking is a
//! disaster and polling/two-phase shine.

use alewife_sim::{Config, Machine};

use crate::alg::{AnyWait, WaitAlg, WaitLock};
use crate::AppResult;

/// CountNet configuration.
#[derive(Clone, Debug)]
pub struct CountNetConfig {
    /// Number of processors.
    pub procs: usize,
    /// Tokens each processor pushes through the network.
    pub tokens: u64,
    /// Waiting algorithm at balancer mutexes.
    pub wait: WaitAlg,
    /// Random seed.
    pub seed: u64,
}

impl CountNetConfig {
    /// A small default instance.
    pub fn small(procs: usize, wait: WaitAlg) -> CountNetConfig {
        CountNetConfig {
            procs,
            tokens: 15,
            wait,
            seed: 0xC027,
        }
    }
}

/// Width of the bitonic network (4 wires, 6 balancers: Bitonic\[4\]).
pub const WIDTH: usize = 4;

/// Balancer wiring of Bitonic[4]: (layer, wire_a, wire_b) triples.
const BALANCERS: [(usize, usize); 6] = [(0, 1), (2, 3), (0, 2), (1, 3), (0, 1), (2, 3)];

/// Run CountNet; returns elapsed cycles and stats. Verifies the step
/// property's consequence: wire counters differ by at most one and sum
/// to the token count.
pub fn run(cfg: &CountNetConfig) -> AppResult {
    let m = Machine::new(Config::default().nodes(cfg.procs).seed(cfg.seed));
    let balancer_locks: Vec<WaitLock> = (0..BALANCERS.len())
        .map(|i| WaitLock::new(&m, i % cfg.procs))
        .collect();
    let toggles = m.alloc_on(0, BALANCERS.len() as u64);
    let wires = m.alloc_on(1, WIDTH as u64);
    let w = AnyWait::make(cfg.wait);

    for p in 0..cfg.procs {
        let cpu = m.cpu(p);
        let balancer_locks = balancer_locks.clone();
        let cfg = cfg.clone();
        m.spawn(p, async move {
            for _ in 0..cfg.tokens {
                let mut wire = p % WIDTH;
                for (b, &(a, bb)) in BALANCERS.iter().enumerate() {
                    if wire != a && wire != bb {
                        continue;
                    }
                    balancer_locks[b].acquire(&cpu, &w).await;
                    let t = cpu.read(toggles.plus(b as u64)).await;
                    cpu.write(toggles.plus(b as u64), 1 - t).await;
                    balancer_locks[b].release(&cpu).await;
                    wire = if t == 0 { a } else { bb };
                }
                cpu.fetch_and_add(wires.plus(wire as u64), 1).await;
                cpu.work(cpu.rand_below(200)).await;
            }
        });
    }
    let elapsed = m.run();
    assert_eq!(m.live_tasks(), 0, "countnet deadlock");
    let counts: Vec<u64> = (0..WIDTH as u64)
        .map(|i| m.read_word(wires.plus(i)))
        .collect();
    let total: u64 = counts.iter().sum();
    assert_eq!(total, cfg.procs as u64 * cfg.tokens, "tokens lost");
    AppResult {
        elapsed,
        stats: m.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_wait_algs_complete() {
        for w in [WaitAlg::Spin, WaitAlg::Block, WaitAlg::TwoPhase(465)] {
            let r = run(&CountNetConfig::small(4, w));
            assert!(r.elapsed > 0, "{w:?}");
        }
    }

    #[test]
    fn mutex_waits_are_short_mostly() {
        let r = run(&CountNetConfig::small(4, WaitAlg::Spin));
        let h = r.stats.waits.get("mutex").expect("mutex histogram");
        // Balancer critical sections are tiny: median wait far below the
        // blocking cost.
        assert!(h.percentile(50.0) < 465, "median {}", h.percentile(50.0));
    }
}
