//! # sim-apps — the paper's application benchmarks
//!
//! Miniature parallel applications preserving the *synchronization
//! signatures* of the programs the thesis measures (Table 4.2, §3.5.6):
//! the same synchronization objects, contention mixes, and waiting-time
//! distributions, with computation modelled as cycle costs. Numerics are
//! simplified — the paper's results are driven by synchronization
//! structure, not physics.
//!
//! | Module | Paper application | Synchronization |
//! |---|---|---|
//! | [`gamteb`] | Gamteb photon transport | 9 fetch-and-op interaction counters |
//! | [`tsp`] | Traveling Salesman (branch & bound) | fetch-and-inc work queue |
//! | [`aq`] | Adaptive Quadrature | fetch-and-inc work queue / futures |
//! | [`mp3d`] | MP3D rarefied flow | cell locks + collision-count lock |
//! | [`cholesky`] | Sparse Cholesky | column locks, task counter |
//! | [`jacobi`] | Jacobi relaxation | J-structures (and a barrier variant) |
//! | [`cgrad`] | Conjugate gradient | barriers |
//! | [`fib`] | Fibonacci with futures | futures |
//! | [`fibheap`] | Concurrent Fibonacci heap | one hot mutex |
//! | [`countnet`] | Counting network | balancer mutexes |
//! | [`mutex_app`] | Synthetic mutex benchmark | one mutex, tunable load |
//!
//! The [`alg`] module provides runtime-selectable wrappers
//! ([`alg::AnyLock`], [`alg::AnyFetchOp`], [`alg::AnyWait`],
//! [`alg::WaitLock`]) so the benchmark harness can sweep algorithms.

#![deny(missing_docs)]

use alewife_sim::Stats;

/// Result of one application run.
#[derive(Clone, Debug)]
pub struct AppResult {
    /// Total execution time in cycles.
    pub elapsed: u64,
    /// Machine statistics (waiting-time histograms, counters).
    pub stats: Stats,
}

pub mod alg;
pub mod aq;
pub mod cgrad;
pub mod cholesky;
pub mod countnet;
pub mod fib;
pub mod fibheap;
pub mod gamteb;
pub mod jacobi;
pub mod mp3d;
pub mod mutex_app;
pub mod tsp;
