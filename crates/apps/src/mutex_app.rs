//! Mutex — the synthetic mutual-exclusion benchmark (§4.6.2):
//! lock / critical section / unlock / think, with tunable lengths, used
//! to generate controlled mutex waiting-time distributions.

use alewife_sim::{Config, Machine};

use crate::alg::{AnyWait, WaitAlg, WaitLock};
use crate::AppResult;

/// Mutex benchmark configuration.
#[derive(Clone, Debug)]
pub struct MutexConfig {
    /// Number of processors.
    pub procs: usize,
    /// Acquisitions per processor.
    pub ops: u64,
    /// Critical-section cycles.
    pub cs: u64,
    /// Mean think time between acquisitions.
    pub think: u64,
    /// Waiting algorithm.
    pub wait: WaitAlg,
    /// Random seed.
    pub seed: u64,
}

impl MutexConfig {
    /// A small default instance.
    pub fn small(procs: usize, wait: WaitAlg) -> MutexConfig {
        MutexConfig {
            procs,
            ops: 25,
            cs: 150,
            think: 500,
            wait,
            seed: 0x0007,
        }
    }
}

/// Run the mutex benchmark; returns elapsed cycles and stats.
pub fn run(cfg: &MutexConfig) -> AppResult {
    let m = Machine::new(Config::default().nodes(cfg.procs).seed(cfg.seed));
    let lock = WaitLock::new(&m, 0);
    let counter = m.alloc_on(1 % cfg.procs, 1);
    let w = AnyWait::make(cfg.wait);

    for p in 0..cfg.procs {
        let cpu = m.cpu(p);
        let cfg = cfg.clone();
        m.spawn(p, async move {
            for _ in 0..cfg.ops {
                lock.acquire(&cpu, &w).await;
                let v = cpu.read(counter).await;
                cpu.work(cfg.cs).await;
                cpu.write(counter, v + 1).await;
                lock.release(&cpu).await;
                cpu.work(cpu.rand_below(2 * cfg.think.max(1))).await;
            }
        });
    }
    let elapsed = m.run();
    assert_eq!(m.live_tasks(), 0, "mutex benchmark deadlock");
    assert_eq!(
        m.read_word(counter),
        cfg.procs as u64 * cfg.ops,
        "mutual exclusion violated"
    );
    AppResult {
        elapsed,
        stats: m.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_wait_algs_exclude() {
        for w in [
            WaitAlg::Spin,
            WaitAlg::Block,
            WaitAlg::TwoPhase(465),
            WaitAlg::TwoPhase(232),
        ] {
            let r = run(&MutexConfig::small(4, w));
            assert!(r.elapsed > 0, "{w:?}");
        }
    }

    /// Low-contention setting: waits are much shorter than B.
    fn short_wait_cfg(wait: WaitAlg) -> MutexConfig {
        MutexConfig {
            procs: 4,
            ops: 30,
            cs: 40,
            think: 1_200,
            wait,
            seed: 0x0007,
        }
    }

    #[test]
    fn spin_beats_block_for_short_waits() {
        let spin = run(&short_wait_cfg(WaitAlg::Spin)).elapsed;
        let block = run(&short_wait_cfg(WaitAlg::Block)).elapsed;
        assert!(
            spin < block,
            "short waits should favour spinning: spin {spin} vs block {block}"
        );
    }

    #[test]
    fn two_phase_tracks_the_better_mechanism() {
        // Short-wait regime: two-phase should be near spinning.
        let spin = run(&short_wait_cfg(WaitAlg::Spin)).elapsed;
        let block = run(&short_wait_cfg(WaitAlg::Block)).elapsed;
        let twop = run(&short_wait_cfg(WaitAlg::TwoPhase(465))).elapsed;
        let best = spin.min(block);
        assert!(
            (twop as f64) < 1.4 * best as f64,
            "two-phase {twop} not within 40% of best static {best}"
        );
    }
}
