//! CGrad — conjugate-gradient-style barrier benchmark (§4.6.2).
//!
//! Alternating compute phases and reductions, each separated by a
//! barrier. Per-phase work is skewed across processors, producing the
//! spread-out barrier waiting times of Figure 4.8.

use alewife_sim::{Config, Machine};
use sync_protocols::barrier::{BarrierCtx, SenseBarrier};

use crate::alg::{AnyWait, WaitAlg};
use crate::AppResult;

/// CGrad configuration.
#[derive(Clone, Debug)]
pub struct CgradConfig {
    /// Number of processors.
    pub procs: usize,
    /// Solver iterations (each has 3 barrier-separated phases).
    pub iterations: usize,
    /// Base compute cycles per phase.
    pub grain: u64,
    /// Waiting algorithm for barrier waits.
    pub wait: WaitAlg,
    /// Random seed.
    pub seed: u64,
}

impl CgradConfig {
    /// A small default instance.
    pub fn small(procs: usize, wait: WaitAlg) -> CgradConfig {
        CgradConfig {
            procs,
            iterations: 4,
            grain: 1_500,
            wait,
            seed: 0xC64D,
        }
    }
}

/// Run CGrad; returns elapsed cycles and stats.
pub fn run(cfg: &CgradConfig) -> AppResult {
    let m = Machine::new(Config::default().nodes(cfg.procs).seed(cfg.seed));
    let bar = SenseBarrier::new(&m, 0, cfg.procs as u64);
    let dot = m.alloc_on(0, 1);
    let w = AnyWait::make(cfg.wait);

    for p in 0..cfg.procs {
        let cpu = m.cpu(p);
        let cfg = cfg.clone();
        m.spawn(p, async move {
            let mut bctx = BarrierCtx::default();
            for _ in 0..cfg.iterations {
                // Phase 1: matrix-vector product (skewed rows).
                cpu.work(cfg.grain + cpu.rand_below(cfg.grain)).await;
                bar.wait(&cpu, &mut bctx, &w).await;
                // Phase 2: dot-product reduction.
                cpu.work(cfg.grain / 4).await;
                cpu.fetch_and_add(dot, 1).await;
                bar.wait(&cpu, &mut bctx, &w).await;
                // Phase 3: vector update.
                cpu.work(cfg.grain / 2 + cpu.rand_below(cfg.grain / 2))
                    .await;
                bar.wait(&cpu, &mut bctx, &w).await;
            }
        });
    }
    let elapsed = m.run();
    assert_eq!(m.live_tasks(), 0, "cgrad deadlock");
    assert_eq!(
        m.read_word(dot),
        (cfg.procs * cfg.iterations) as u64,
        "reduction lost updates"
    );
    AppResult {
        elapsed,
        stats: m.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_wait_algs_complete() {
        for w in [WaitAlg::Spin, WaitAlg::Block, WaitAlg::TwoPhase(465)] {
            let r = run(&CgradConfig::small(4, w));
            assert!(r.elapsed > 0, "{w:?}");
        }
    }

    #[test]
    fn barrier_waits_recorded() {
        let r = run(&CgradConfig::small(8, WaitAlg::TwoPhase(465)));
        let h = r.stats.waits.get("barrier").expect("barrier histogram");
        assert!(h.count >= 8 * 4 * 3 - 12); // all waits minus last-arrivers
    }
}
