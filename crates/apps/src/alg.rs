//! Runtime-selectable algorithm wrappers used by the applications and
//! the benchmark harness to sweep synchronization algorithms.

use std::rc::Rc;

use alewife_sim::{Addr, Cpu, Machine, WaitQueueId};
use reactive_core::lock::{ReactiveLock, ReleaseMode};
use reactive_core::policy::{Competitive3, Hysteresis, Instrument};
use reactive_core::waiting::{SwitchSpin, TwoPhase, TwoPhaseSwitchSpin};
use reactive_core::ReactiveFetchOp;
use sync_protocols::fetch_op::{CombiningTree, FetchOp, LockFetchOp};
use sync_protocols::mp::{MpCombiningTree, MpCounter, MpQueueLock};
use sync_protocols::spin::{Lock, McsLock, TestAndSetLock, TtsLock, FREE};
use sync_protocols::waiting::{AlwaysBlock, AlwaysSpin, WaitStrategy};

/// Selectable spin-lock algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockAlg {
    /// test&set with exponential backoff.
    TestAndSet,
    /// test-and-test-and-set with exponential backoff.
    Tts,
    /// MCS queue lock.
    Mcs,
    /// The reactive lock (switch-immediately policy).
    Reactive,
    /// The reactive lock with the 3-competitive policy.
    ReactiveCompetitive,
    /// The reactive lock with Hysteresis(x, y).
    ReactiveHysteresis(u64, u64),
    /// Message-passing queue lock (manager on the lock's home node).
    MpQueue,
}

/// A lock of any algorithm (enum dispatch over [`LockAlg`]).
#[derive(Clone, Debug)]
pub enum AnyLock {
    /// test&set.
    Ts(TestAndSetLock),
    /// test-and-test-and-set.
    Tts(TtsLock),
    /// MCS.
    Mcs(McsLock),
    /// Reactive.
    Reactive(ReactiveLock),
    /// Message-passing queue lock.
    Mp(MpQueueLock),
}

/// Release token for [`AnyLock`].
#[derive(Clone, Copy, Debug)]
pub enum AnyToken {
    /// No per-acquisition state.
    Unit,
    /// MCS queue node.
    Node(Addr),
    /// Reactive release mode.
    RMode(ReleaseMode),
}

impl AnyLock {
    /// Construct a lock homed on `home` for up to `procs` contenders.
    pub fn make(m: &Machine, home: usize, alg: LockAlg, procs: usize) -> AnyLock {
        AnyLock::make_instrumented(m, home, alg, procs, None)
    }

    /// Construct a lock, additionally attaching a switch-event sink to
    /// the reactive variants (the passive algorithms never switch, so
    /// the sink is unused for them).
    pub fn make_instrumented(
        m: &Machine,
        home: usize,
        alg: LockAlg,
        procs: usize,
        sink: Option<Rc<dyn Instrument>>,
    ) -> AnyLock {
        let reactive_builder = || {
            let b = ReactiveLock::builder(m, home).max_procs(procs);
            match sink.clone() {
                Some(s) => b.instrument(s),
                None => b,
            }
        };
        match alg {
            LockAlg::TestAndSet => AnyLock::Ts(TestAndSetLock::new(m, home, procs)),
            LockAlg::Tts => AnyLock::Tts(TtsLock::new(m, home, procs)),
            LockAlg::Mcs => AnyLock::Mcs(McsLock::new(m, home)),
            LockAlg::Reactive => AnyLock::Reactive(reactive_builder().build()),
            LockAlg::ReactiveCompetitive => AnyLock::Reactive(
                reactive_builder()
                    .policy(Competitive3::new(reactive_core::lock::SWITCH_ROUND_TRIP))
                    .build(),
            ),
            LockAlg::ReactiveHysteresis(x, y) => {
                AnyLock::Reactive(reactive_builder().policy(Hysteresis::new(x, y)).build())
            }
            LockAlg::MpQueue => AnyLock::Mp(MpQueueLock::new(m, home)),
        }
    }

    /// Acquire; returns the token to release with.
    pub async fn acquire(&self, cpu: &Cpu) -> AnyToken {
        match self {
            AnyLock::Ts(l) => {
                l.acquire(cpu).await;
                AnyToken::Unit
            }
            AnyLock::Tts(l) => {
                l.acquire(cpu).await;
                AnyToken::Unit
            }
            AnyLock::Mcs(l) => AnyToken::Node(l.acquire(cpu).await),
            AnyLock::Reactive(l) => AnyToken::RMode(l.acquire(cpu).await),
            AnyLock::Mp(l) => {
                l.acquire(cpu).await;
                AnyToken::Unit
            }
        }
    }

    /// Release with the token from [`AnyLock::acquire`].
    pub async fn release(&self, cpu: &Cpu, t: AnyToken) {
        match (self, t) {
            (AnyLock::Ts(l), AnyToken::Unit) => l.release(cpu, ()).await,
            (AnyLock::Tts(l), AnyToken::Unit) => l.release(cpu, ()).await,
            (AnyLock::Mcs(l), AnyToken::Node(q)) => l.release(cpu, q).await,
            (AnyLock::Reactive(l), AnyToken::RMode(r)) => l.release(cpu, r).await,
            (AnyLock::Mp(l), AnyToken::Unit) => l.release(cpu, ()).await,
            _ => panic!("token does not match lock variant"),
        }
    }
}

/// Selectable fetch-and-op algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FetchOpAlg {
    /// Counter under a TTS lock.
    TtsLock,
    /// Counter under an MCS queue lock.
    QueueLock,
    /// Goodman combining tree.
    Combining,
    /// The reactive fetch-and-op.
    Reactive,
    /// Centralized message-passing counter.
    MpCentral,
    /// Message-passing combining tree.
    MpCombining,
}

/// A fetch-and-add object of any algorithm.
#[derive(Clone, Debug)]
pub enum AnyFetchOp {
    /// TTS-lock based.
    TtsLock(LockFetchOp<TtsLock>),
    /// Queue-lock based.
    Queue(LockFetchOp<McsLock>),
    /// Combining tree.
    Tree(CombiningTree),
    /// Reactive.
    Reactive(ReactiveFetchOp),
    /// Centralized message-passing.
    MpCentral(MpCounter),
    /// Message-passing combining tree.
    MpTree(MpCombiningTree),
}

impl AnyFetchOp {
    /// Construct an object homed on `home` for up to `procs` requesters.
    pub fn make(m: &Machine, home: usize, alg: FetchOpAlg, procs: usize) -> AnyFetchOp {
        match alg {
            FetchOpAlg::TtsLock => {
                AnyFetchOp::TtsLock(LockFetchOp::new(m, home, TtsLock::new(m, home, procs)))
            }
            FetchOpAlg::QueueLock => {
                AnyFetchOp::Queue(LockFetchOp::new(m, home, McsLock::new(m, home)))
            }
            FetchOpAlg::Combining => AnyFetchOp::Tree(CombiningTree::new(m, home, procs)),
            FetchOpAlg::Reactive => AnyFetchOp::Reactive(ReactiveFetchOp::new(m, home, procs)),
            FetchOpAlg::MpCentral => AnyFetchOp::MpCentral(MpCounter::new(m, home)),
            FetchOpAlg::MpCombining => AnyFetchOp::MpTree(MpCombiningTree::new(m, home, procs)),
        }
    }

    /// Atomically add `delta`; returns the previous value.
    pub async fn fetch_add(&self, cpu: &Cpu, delta: u64) -> u64 {
        match self {
            AnyFetchOp::TtsLock(f) => f.fetch_add(cpu, delta).await,
            AnyFetchOp::Queue(f) => f.fetch_add(cpu, delta).await,
            AnyFetchOp::Tree(f) => f.fetch_add(cpu, delta).await,
            AnyFetchOp::Reactive(f) => f.fetch_add(cpu, delta).await,
            AnyFetchOp::MpCentral(f) => f.fetch_add(cpu, delta).await,
            AnyFetchOp::MpTree(f) => f.fetch_add(cpu, delta).await,
        }
    }
}

/// Selectable waiting algorithm (Chapter 4's experiments).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitAlg {
    /// Always poll.
    Spin,
    /// Always signal.
    Block,
    /// Two-phase with `Lpoll` in cycles.
    TwoPhase(u64),
    /// Switch-spinning (multithreaded polling).
    SwitchSpin,
    /// Two-phase switch-spinning with `Lpoll` in cycles.
    TwoPhaseSwitchSpin(u64),
}

impl WaitAlg {
    /// Short human-readable label for report tables.
    pub fn label(&self) -> String {
        match self {
            WaitAlg::Spin => "always-spin".into(),
            WaitAlg::Block => "always-block".into(),
            WaitAlg::TwoPhase(l) => format!("2phase(L={l})"),
            WaitAlg::SwitchSpin => "switch-spin".into(),
            WaitAlg::TwoPhaseSwitchSpin(l) => format!("2phase-ss(L={l})"),
        }
    }
}

/// A waiting strategy of any algorithm (enum dispatch over [`WaitAlg`]).
#[derive(Clone, Copy, Debug)]
pub enum AnyWait {
    /// Always poll.
    Spin(AlwaysSpin),
    /// Always block.
    Block(AlwaysBlock),
    /// Two-phase.
    TwoPhase(TwoPhase),
    /// Switch-spin.
    SwitchSpin(SwitchSpin),
    /// Two-phase switch-spin.
    TwoPhaseSs(TwoPhaseSwitchSpin),
}

impl AnyWait {
    /// Construct from the algorithm selector.
    pub fn make(alg: WaitAlg) -> AnyWait {
        match alg {
            WaitAlg::Spin => AnyWait::Spin(AlwaysSpin),
            WaitAlg::Block => AnyWait::Block(AlwaysBlock),
            WaitAlg::TwoPhase(l) => AnyWait::TwoPhase(TwoPhase::new(l)),
            WaitAlg::SwitchSpin => AnyWait::SwitchSpin(SwitchSpin),
            WaitAlg::TwoPhaseSwitchSpin(l) => AnyWait::TwoPhaseSs(TwoPhaseSwitchSpin { lpoll: l }),
        }
    }
}

impl WaitStrategy for AnyWait {
    async fn wait_word(
        &self,
        cpu: &Cpu,
        addr: Addr,
        q: WaitQueueId,
        pred: impl Fn(u64) -> bool + Clone + Unpin + 'static,
    ) -> u64 {
        match self {
            AnyWait::Spin(w) => w.wait_word(cpu, addr, q, pred).await,
            AnyWait::Block(w) => w.wait_word(cpu, addr, q, pred).await,
            AnyWait::TwoPhase(w) => w.wait_word(cpu, addr, q, pred).await,
            AnyWait::SwitchSpin(w) => w.wait_word(cpu, addr, q, pred).await,
            AnyWait::TwoPhaseSs(w) => w.wait_word(cpu, addr, q, pred).await,
        }
    }

    async fn wait_full(&self, cpu: &Cpu, addr: Addr, q: WaitQueueId) -> u64 {
        match self {
            AnyWait::Spin(w) => w.wait_full(cpu, addr, q).await,
            AnyWait::Block(w) => w.wait_full(cpu, addr, q).await,
            AnyWait::TwoPhase(w) => w.wait_full(cpu, addr, q).await,
            AnyWait::SwitchSpin(w) => w.wait_full(cpu, addr, q).await,
            AnyWait::TwoPhaseSs(w) => w.wait_full(cpu, addr, q).await,
        }
    }
}

/// A mutex whose *waiting mechanism* is pluggable (Chapter 4's
/// mutual-exclusion benchmarks): a test-and-test-and-set lock whose
/// contenders wait with any [`WaitStrategy`], and whose releases signal
/// potential blockers. Waiting times are recorded in the `"mutex"`
/// histogram (Figures 4.10-4.11).
#[derive(Clone, Copy, Debug)]
pub struct WaitLock {
    flag: Addr,
    q: WaitQueueId,
}

impl WaitLock {
    /// Create a waitable mutex homed on `home`.
    pub fn new(m: &Machine, home: usize) -> WaitLock {
        WaitLock {
            flag: m.alloc_on(home, 1),
            q: m.new_wait_queue(),
        }
    }

    /// Acquire, waiting with `w`.
    pub async fn acquire<W: WaitStrategy>(&self, cpu: &Cpu, w: &W) {
        let t0 = cpu.now();
        loop {
            if cpu.test_and_set(self.flag).await == FREE {
                cpu.record_wait("mutex", cpu.now() - t0);
                return;
            }
            w.wait_word(cpu, self.flag, self.q, |v| v == FREE).await;
        }
    }

    /// Release and wake one waiter (if any blocked).
    pub async fn release(&self, cpu: &Cpu) {
        cpu.write(self.flag, FREE).await;
        cpu.signal_one(self.q).await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alewife_sim::Config;

    #[test]
    fn any_lock_all_variants_exclude() {
        for alg in [
            LockAlg::TestAndSet,
            LockAlg::Tts,
            LockAlg::Mcs,
            LockAlg::Reactive,
            LockAlg::ReactiveCompetitive,
            LockAlg::ReactiveHysteresis(4, 8),
            LockAlg::MpQueue,
        ] {
            let m = Machine::new(Config::default().nodes(4));
            let lock = AnyLock::make(&m, 0, alg, 4);
            let shared = m.alloc_on(1, 1);
            for p in 0..4 {
                let cpu = m.cpu(p);
                let lock = lock.clone();
                m.spawn(p, async move {
                    for _ in 0..10 {
                        let t = lock.acquire(&cpu).await;
                        let v = cpu.read(shared).await;
                        cpu.work(10).await;
                        cpu.write(shared, v + 1).await;
                        lock.release(&cpu, t).await;
                        cpu.work(cpu.rand_below(50)).await;
                    }
                });
            }
            m.run();
            assert_eq!(m.live_tasks(), 0, "{alg:?} deadlocked");
            assert_eq!(m.read_word(shared), 40, "{alg:?} lost updates");
        }
    }

    #[test]
    fn any_fetch_op_all_variants_count() {
        for alg in [
            FetchOpAlg::TtsLock,
            FetchOpAlg::QueueLock,
            FetchOpAlg::Combining,
            FetchOpAlg::Reactive,
            FetchOpAlg::MpCentral,
            FetchOpAlg::MpCombining,
        ] {
            let m = Machine::new(Config::default().nodes(4));
            let f = AnyFetchOp::make(&m, 0, alg, 4);
            let sum = std::rc::Rc::new(std::cell::Cell::new(0u64));
            for p in 0..4 {
                let cpu = m.cpu(p);
                let f = f.clone();
                let sum = sum.clone();
                m.spawn(p, async move {
                    for _ in 0..10 {
                        f.fetch_add(&cpu, 1).await;
                        sum.set(sum.get() + 1);
                        cpu.work(cpu.rand_below(50)).await;
                    }
                });
            }
            m.run();
            assert_eq!(m.live_tasks(), 0, "{alg:?} deadlocked");
            assert_eq!(sum.get(), 40);
        }
    }

    #[test]
    fn wait_lock_with_all_wait_algs() {
        for alg in [
            WaitAlg::Spin,
            WaitAlg::Block,
            WaitAlg::TwoPhase(465),
            WaitAlg::TwoPhase(232),
        ] {
            let m = Machine::new(Config::default().nodes(4));
            let lock = WaitLock::new(&m, 0);
            let w = AnyWait::make(alg);
            let shared = m.alloc_on(1, 1);
            for p in 0..4 {
                let cpu = m.cpu(p);
                m.spawn(p, async move {
                    for _ in 0..10 {
                        lock.acquire(&cpu, &w).await;
                        let v = cpu.read(shared).await;
                        cpu.work(20).await;
                        cpu.write(shared, v + 1).await;
                        lock.release(&cpu).await;
                        cpu.work(cpu.rand_below(100)).await;
                    }
                });
            }
            m.run();
            assert_eq!(m.live_tasks(), 0, "{alg:?} deadlocked");
            assert_eq!(m.read_word(shared), 40, "{alg:?} lost updates");
        }
    }
}
