//! Facade wiring smoke test: every re-export of the `reactive-sync`
//! facade (`sim`, `api`, `protocols`, `reactive`, `waiting`, `native`,
//! `apps`) must be nameable and usable through its facade path, so a
//! broken re-export or a cross-crate API drift can never land silently.

use reactive_sync::api::{Decision, Observation, Policy as PolicyTrait, ProtocolId};
use reactive_sync::apps::alg::{AnyFetchOp, AnyLock, FetchOpAlg, LockAlg};
use reactive_sync::native::{McsLock, ReactiveMutex, TtsLock};
use reactive_sync::protocols::spin::{FREE, INVALID_PTR, NIL};
use reactive_sync::reactive::{Hysteresis, ReactiveLock};
use reactive_sync::sim::{Config, CostModel, Machine};
use reactive_sync::waiting::dist::WaitDist;
use reactive_sync::waiting::expected::Family;
use reactive_sync::waiting::{expected_two_phase, optimal_alpha, EXP_ALPHA_STAR};

/// `sim`: build a machine, allocate, and run a trivial program.
#[test]
fn sim_reexport_is_usable() {
    let m = Machine::new(Config::default().nodes(2).cost(CostModel::nwo()));
    let a = m.alloc_on(0, 1);
    let cpu = m.cpu(1);
    m.spawn(1, async move {
        cpu.fetch_and_add(a, 41).await;
        cpu.fetch_and_add(a, 1).await;
    });
    m.run();
    assert_eq!(m.live_tasks(), 0);
    assert_eq!(m.read_word(a), 42);
}

/// `api`: the shared policy trait accepts a user-defined impl through
/// the facade path (the whole point of the open API).
#[test]
fn api_reexport_is_usable() {
    struct Never;
    impl PolicyTrait for Never {
        fn decide(&mut self, _obs: &Observation) -> Decision {
            Decision::Stay
        }
    }
    let mut p: Box<dyn PolicyTrait> = Box::new(Never);
    let obs = Observation::suboptimal(ProtocolId(0), ProtocolId(1), 99.0);
    assert_eq!(p.decide(&obs), Decision::Stay);
}

/// `protocols`: the spin-lock word constants are distinct sentinels
/// (the reactive lock's consensus discipline depends on this).
#[test]
fn protocols_reexport_is_usable() {
    assert_ne!(FREE, INVALID_PTR);
    assert_ne!(NIL, INVALID_PTR);
}

/// `reactive`: a reactive lock built with an explicit policy protects a
/// counter on the simulated machine.
#[test]
fn reactive_reexport_is_usable() {
    let procs = 4;
    let m = Machine::new(Config::default().nodes(procs));
    let lock = ReactiveLock::builder(&m, 0)
        .max_procs(procs)
        .policy(Hysteresis::new(4, 8))
        .build();
    let shared = m.alloc_on(1, 1);
    for p in 0..procs {
        let cpu = m.cpu(p);
        let lock = lock.clone();
        m.spawn(p, async move {
            for _ in 0..5 {
                let t = lock.acquire(&cpu).await;
                let v = cpu.read(shared).await;
                cpu.write(shared, v + 1).await;
                lock.release(&cpu, t).await;
            }
        });
    }
    m.run();
    assert_eq!(m.live_tasks(), 0);
    assert_eq!(m.read_word(shared), procs as u64 * 5);
}

/// `waiting`: the closed forms agree with their published constants.
#[test]
fn waiting_reexport_is_usable() {
    let d = WaitDist::exponential_with_mean(500.0);
    let b = 465.0;
    assert!(expected_two_phase(&d, EXP_ALPHA_STAR, b, 1.0) > 0.0);
    let (alpha, rho) = optimal_alpha(Family::Exponential, b);
    assert!((alpha - EXP_ALPHA_STAR).abs() < 0.02);
    assert!(
        rho < 1.6,
        "exponential two-phase should be ~1.58-competitive"
    );
}

/// `native`: the host-hardware locks acquire and release.
#[test]
fn native_reexport_is_usable() {
    let tts = TtsLock::new();
    tts.lock();
    tts.unlock();
    let mcs = McsLock::new();
    assert!(mcs.is_unlocked());
    let m = ReactiveMutex::new(0u64);
    *m.lock() += 42;
    assert_eq!(*m.lock(), 42);
}

/// `apps`: the algorithm-selection wrappers construct and run through
/// the facade exactly as the benchmark harness uses them.
#[test]
fn apps_reexport_is_usable() {
    let procs = 4;
    let m = Machine::new(Config::default().nodes(procs).seed(3));
    let lock = AnyLock::make(&m, 0, LockAlg::Tts, procs);
    let counter = AnyFetchOp::make(&m, 0, FetchOpAlg::TtsLock, procs);
    let shared = m.alloc_on(1, 1);
    for p in 0..procs {
        let cpu = m.cpu(p);
        let lock = lock.clone();
        let counter = counter.clone();
        m.spawn(p, async move {
            for _ in 0..3 {
                counter.fetch_add(&cpu, 1).await;
                let t = lock.acquire(&cpu).await;
                let v = cpu.read(shared).await;
                cpu.write(shared, v + 1).await;
                lock.release(&cpu, t).await;
            }
        });
    }
    m.run();
    assert_eq!(m.live_tasks(), 0);
    assert_eq!(m.read_word(shared), procs as u64 * 3);
}
