//! Cross-crate integration tests: the reactive algorithms from
//! `reactive-core` driving `sync-protocols` objects on the `alewife-sim`
//! substrate, exercised through the facade crate exactly as a downstream
//! user would.

use reactive_sync::apps::alg::{AnyFetchOp, AnyLock, FetchOpAlg, LockAlg, WaitAlg};
use reactive_sync::protocols::barrier::{BarrierCtx, SenseBarrier};
use reactive_sync::protocols::pc::JStructure;
use reactive_sync::reactive::waiting::TwoPhase;
use reactive_sync::sim::{Config, CostModel, Machine};

/// A pipeline mixing every synchronization type at once: a reactive
/// lock guards a shared journal, a reactive fetch-and-op hands out
/// tickets, J-structures carry stage results, and a barrier closes each
/// round — all on one simulated machine.
#[test]
fn mixed_synchronization_pipeline() {
    let procs = 8;
    let rounds = 3usize;
    let m = Machine::new(Config::default().nodes(procs));
    let tickets = AnyFetchOp::make(&m, 0, FetchOpAlg::Reactive, procs);
    let journal_lock = AnyLock::make(&m, 1, LockAlg::Reactive, procs);
    let journal = m.alloc_on(1, 1);
    let stage = JStructure::new(&m, procs * rounds);
    let bar = SenseBarrier::new(&m, 2, procs as u64);
    let waiter = TwoPhase::new(CostModel::nwo().block_cost());

    for p in 0..procs {
        let cpu = m.cpu(p);
        let tickets = tickets.clone();
        let journal_lock = journal_lock.clone();
        let stage = stage.clone();
        m.spawn(p, async move {
            let mut bctx = BarrierCtx::default();
            for r in 0..rounds {
                // Claim a ticket (reactive fetch-and-op).
                let ticket = tickets.fetch_add(&cpu, 1).await;
                cpu.work(100 + cpu.rand_below(400)).await;
                // Publish this round's result (J-structure).
                stage
                    .write(&cpu, r * cpu.nodes() + cpu.node(), ticket + 1)
                    .await;
                // Read the left neighbour's result (two-phase waiting).
                let left = (cpu.node() + cpu.nodes() - 1) % cpu.nodes();
                let v = stage.read(&cpu, &waiter, r * cpu.nodes() + left).await;
                assert!(v > 0);
                // Log to the shared journal (reactive lock).
                let t = journal_lock.acquire(&cpu).await;
                let j = cpu.read(journal).await;
                cpu.work(20).await;
                cpu.write(journal, j + 1).await;
                journal_lock.release(&cpu, t).await;
                // Close the round.
                bar.wait(&cpu, &mut bctx, &waiter).await;
            }
        });
    }
    m.run();
    assert_eq!(m.live_tasks(), 0, "pipeline deadlocked");
    assert_eq!(m.read_word(journal), (procs * rounds) as u64);
    // Every ticket was unique: final counter equals total claims.
    let st = m.stats();
    assert!(st.waits.contains_key("jstruct"));
    assert!(st.waits.contains_key("barrier"));
}

/// All lock algorithms agree on the final count for an identical
/// deterministic workload (same seed), and the reactive lock's elapsed
/// time is never worse than the worst static protocol by more than a
/// small factor.
#[test]
fn reactive_lock_bounded_by_static_choices() {
    fn run(alg: LockAlg, procs: usize) -> u64 {
        let m = Machine::new(Config::default().nodes(procs).seed(7));
        let lock = AnyLock::make(&m, 0, alg, procs);
        let shared = m.alloc_on(1, 1);
        for p in 0..procs {
            let cpu = m.cpu(p);
            let lock = lock.clone();
            m.spawn(p, async move {
                for _ in 0..20 {
                    let t = lock.acquire(&cpu).await;
                    let v = cpu.read(shared).await;
                    cpu.work(50).await;
                    cpu.write(shared, v + 1).await;
                    lock.release(&cpu, t).await;
                    cpu.work(cpu.rand_below(300)).await;
                }
            });
        }
        let elapsed = m.run();
        assert_eq!(m.live_tasks(), 0);
        assert_eq!(m.read_word(shared), procs as u64 * 20);
        elapsed
    }
    for procs in [2usize, 8, 16] {
        let tts = run(LockAlg::Tts, procs);
        let mcs = run(LockAlg::Mcs, procs);
        let reactive = run(LockAlg::Reactive, procs);
        let best = tts.min(mcs);
        assert!(
            (reactive as f64) < 1.8 * best as f64,
            "P={procs}: reactive {reactive} vs best static {best}"
        );
    }
}

/// Fetch-and-op linearizability across every algorithm: the multiset of
/// returned values must be exactly {0, ..., N-1}.
#[test]
fn fetch_op_linearizable_all_algorithms() {
    for alg in [
        FetchOpAlg::TtsLock,
        FetchOpAlg::QueueLock,
        FetchOpAlg::Combining,
        FetchOpAlg::Reactive,
        FetchOpAlg::MpCentral,
        FetchOpAlg::MpCombining,
    ] {
        let procs = 8;
        let m = Machine::new(Config::default().nodes(procs));
        let f = AnyFetchOp::make(&m, 0, alg, procs);
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        for p in 0..procs {
            let cpu = m.cpu(p);
            let f = f.clone();
            let seen = seen.clone();
            m.spawn(p, async move {
                for _ in 0..15 {
                    let v = f.fetch_add(&cpu, 1).await;
                    seen.borrow_mut().push(v);
                    cpu.work(cpu.rand_below(120)).await;
                }
            });
        }
        m.run();
        assert_eq!(m.live_tasks(), 0, "{alg:?} deadlocked");
        let mut got = seen.borrow().clone();
        got.sort_unstable();
        assert_eq!(
            got,
            (0..(procs as u64 * 15)).collect::<Vec<_>>(),
            "{alg:?} returns not a permutation"
        );
    }
}

/// Waiting algorithms: on the same workload, two-phase waiting lands
/// near the better of always-spin / always-block for both a short-wait
/// and a long-wait regime (the robustness claim of §4.7).
#[test]
fn two_phase_robust_across_wait_regimes() {
    use reactive_sync::apps::mutex_app::{run, MutexConfig};
    let mk = |procs, cs, think, wait| MutexConfig {
        procs,
        ops: 20,
        cs,
        think,
        wait,
        seed: 3,
    };
    let b = CostModel::nwo().block_cost();
    // Short waits.
    let spin = run(&mk(4, 40, 1_000, WaitAlg::Spin)).elapsed;
    let block = run(&mk(4, 40, 1_000, WaitAlg::Block)).elapsed;
    let twop = run(&mk(4, 40, 1_000, WaitAlg::TwoPhase(b))).elapsed;
    assert!((twop as f64) < 1.4 * spin.min(block) as f64, "short regime");
    // Long waits (big critical sections, deep queues).
    let spin = run(&mk(8, 2_000, 100, WaitAlg::Spin)).elapsed;
    let block = run(&mk(8, 2_000, 100, WaitAlg::Block)).elapsed;
    let twop = run(&mk(8, 2_000, 100, WaitAlg::TwoPhase(b))).elapsed;
    assert!(
        (twop as f64) < 1.4 * spin.min(block) as f64,
        "long regime: 2p {twop} spin {spin} block {block}"
    );
}

/// The theory and the simulator agree on the sign of the spin/block
/// tradeoff around the breakeven point B.
#[test]
fn theory_matches_simulation_direction() {
    use reactive_sync::waiting::dist::WaitDist;
    use reactive_sync::waiting::expected::{expected_poll, expected_signal};
    let b = CostModel::nwo().block_cost() as f64;
    // Short waits: polling cheaper in expectation.
    let short = WaitDist::exponential_with_mean(0.2 * b);
    assert!(expected_poll(&short, 1.0) < expected_signal(b));
    // Long waits: signaling cheaper.
    let long = WaitDist::exponential_with_mean(5.0 * b);
    assert!(expected_poll(&long, 1.0) > expected_signal(b));
}
