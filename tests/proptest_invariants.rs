//! Property-based tests (proptest) over the core invariants:
//! linearizability of fetch-and-op under random workload shapes, mutual
//! exclusion of the reactive lock under random contention mixes, the
//! 3-competitive bound on random request sequences, and the expected-
//! cost model's analytic identities.

use proptest::prelude::*;
use reactive_sync::apps::alg::{AnyFetchOp, AnyLock, FetchOpAlg, LockAlg};
use reactive_sync::sim::{Config, Machine};
use reactive_sync::waiting::dist::WaitDist;
use reactive_sync::waiting::expected::{expected_opt, expected_two_phase};
use reactive_sync::waiting::task_system::{Competitive3, TaskSystem};

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case runs a full simulation
        .. ProptestConfig::default()
    })]

    /// The reactive fetch-and-op returns a permutation of {0..N} for any
    /// processor count, think-time bound, and seed.
    #[test]
    fn reactive_fetch_op_linearizes(
        procs in 1usize..12,
        think in 1u64..400,
        seed in 1u64..u64::MAX,
        iters in 3u64..12,
    ) {
        let m = Machine::new(Config::default().nodes(procs.max(2)).seed(seed));
        let f = AnyFetchOp::make(&m, 0, FetchOpAlg::Reactive, procs);
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        for p in 0..procs {
            let cpu = m.cpu(p);
            let f = f.clone();
            let seen = seen.clone();
            m.spawn(p, async move {
                for _ in 0..iters {
                    let v = f.fetch_add(&cpu, 1).await;
                    seen.borrow_mut().push(v);
                    cpu.work(cpu.rand_below(think)).await;
                }
            });
        }
        m.run();
        prop_assert_eq!(m.live_tasks(), 0, "deadlock");
        let mut got = seen.borrow().clone();
        got.sort_unstable();
        let want: Vec<u64> = (0..procs as u64 * iters).collect();
        prop_assert_eq!(got, want);
    }

    /// The reactive lock preserves mutual exclusion (no lost updates on
    /// a non-atomic read-modify-write) for any seed and load shape.
    #[test]
    fn reactive_lock_excludes(
        procs in 1usize..12,
        cs in 1u64..150,
        think in 1u64..400,
        seed in 1u64..u64::MAX,
    ) {
        let iters = 10u64;
        let m = Machine::new(Config::default().nodes(procs.max(2)).seed(seed));
        let lock = AnyLock::make(&m, 0, LockAlg::Reactive, procs);
        let shared = m.alloc_on(1, 1);
        for p in 0..procs {
            let cpu = m.cpu(p);
            let lock = lock.clone();
            m.spawn(p, async move {
                for _ in 0..iters {
                    let t = lock.acquire(&cpu).await;
                    let v = cpu.read(shared).await;
                    cpu.work(cs).await;
                    cpu.write(shared, v + 1).await;
                    lock.release(&cpu, t).await;
                    cpu.work(cpu.rand_below(think)).await;
                }
            });
        }
        m.run();
        prop_assert_eq!(m.live_tasks(), 0, "deadlock");
        prop_assert_eq!(m.read_word(shared), procs as u64 * iters);
    }

    /// Simulations replay identically from the same seed.
    #[test]
    fn determinism(seed in 1u64..u64::MAX) {
        let run = |seed| {
            let m = Machine::new(Config::default().nodes(4).seed(seed));
            let f = AnyFetchOp::make(&m, 0, FetchOpAlg::Reactive, 4);
            for p in 0..4 {
                let cpu = m.cpu(p);
                let f = f.clone();
                m.spawn(p, async move {
                    for _ in 0..8 {
                        f.fetch_add(&cpu, 1).await;
                        cpu.work(cpu.rand_below(200)).await;
                    }
                });
            }
            let t = m.run();
            (t, m.stats().net_msgs, m.stats().remote_misses)
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    /// The 3-competitive policy never exceeds 3x the off-line optimum
    /// (plus one transition of slack for the unfinished last phase) on
    /// ANY request sequence.
    #[test]
    fn competitive3_bound_on_random_sequences(
        reqs in prop::collection::vec(0usize..2, 1..400),
        d_ab in 100.0f64..10_000.0,
        d_ba in 100.0f64..10_000.0,
        c_high in 10.0f64..500.0,
        c_low in 1.0f64..100.0,
    ) {
        let ts = TaskSystem::two_protocol(d_ab, d_ba, c_high, c_low);
        let online = ts.run_online(&mut Competitive3::default(), &reqs);
        let opt = ts.offline_opt(&reqs);
        // The classic bound with an additive constant (the algorithm may
        // be mid-phase when the sequence ends).
        prop_assert!(
            online <= 3.0 * opt + (d_ab + d_ba) + 1e-6,
            "online {} vs opt {}", online, opt
        );
    }

    /// Expected-cost identities: E[C_2phase] is between the best and
    /// worst pure strategies... not in general — but it always lies
    /// above E[C_opt], and at α=0 it equals the signaling cost.
    #[test]
    fn expected_cost_identities(
        mean in 1.0f64..10_000.0,
        alpha in 0.0f64..4.0,
        b in 10.0f64..2_000.0,
    ) {
        let d = WaitDist::exponential_with_mean(mean);
        let e2p = expected_two_phase(&d, alpha, b, 1.0);
        let eopt = expected_opt(&d, b, 1.0);
        prop_assert!(e2p >= eopt - 1e-9, "2phase {} below opt {}", e2p, eopt);
        let at_zero = expected_two_phase(&d, 0.0, b, 1.0);
        prop_assert!((at_zero - b).abs() < 1e-9);
        // Monotone in the distribution sense: opt <= min(poll, signal).
        prop_assert!(eopt <= b + 1e-9);
        prop_assert!(eopt <= d.mean() + 1e-9);
    }

    /// CDF/partial-mean consistency for both families.
    #[test]
    fn distribution_identities(scale in 1.0f64..10_000.0, x in 0.0f64..20_000.0) {
        for d in [WaitDist::exponential_with_mean(scale), WaitDist::uniform(scale)] {
            prop_assert!((0.0..=1.0).contains(&d.cdf(x)));
            prop_assert!(d.partial_mean(x) <= d.mean() + 1e-9);
            prop_assert!(d.partial_mean(x) >= 0.0);
            // partial_mean is nondecreasing.
            prop_assert!(d.partial_mean(x) <= d.partial_mean(x + 1.0) + 1e-9);
        }
    }
}
