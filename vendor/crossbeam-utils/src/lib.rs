//! Offline stub of `crossbeam-utils`.
//!
//! The build environment has no access to a crate registry, so this
//! workspace vendors the tiny slice of `crossbeam-utils` it actually
//! uses: [`CachePadded`]. The semantics match the real crate (align the
//! wrapped value to a cache-line boundary so neighbouring data does not
//! false-share); only the per-architecture alignment table is simplified
//! to the common 64/128-byte cases.

#![deny(missing_docs)]

use core::fmt;
use core::ops::{Deref, DerefMut};

/// Pads and aligns a value to the length of a cache line.
///
/// On modern x86-64 the spatial prefetcher pulls cache lines in pairs,
/// so 128-byte alignment is used there; other architectures get 64.
#[cfg_attr(target_arch = "x86_64", repr(align(128)))]
#[cfg_attr(not(target_arch = "x86_64"), repr(align(64)))]
#[derive(Clone, Copy, Default, Hash, PartialEq, Eq)]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pads and aligns a value to the length of a cache line.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachePadded")
            .field("value", &self.value)
            .finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(t: T) -> Self {
        CachePadded::new(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_to_cache_line() {
        let p = CachePadded::new(1u8);
        let align = core::mem::align_of_val(&p);
        assert!(align >= 64, "alignment {align} below a cache line");
        assert_eq!(*p, 1u8);
    }
}
