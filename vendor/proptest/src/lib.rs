//! Offline stub of `proptest`.
//!
//! The build environment has no access to a crate registry, so this
//! workspace vendors the slice of `proptest` its three property suites
//! use: the [`proptest!`] macro (with the optional
//! `#![proptest_config(...)]` header), range and `any::<T>()`
//! strategies, `prop::collection::vec`, and the `prop_assert*` macros.
//!
//! Differences from the real crate, deliberately accepted for an
//! offline test harness:
//!
//! * inputs are drawn from a deterministic xorshift generator seeded by
//!   the test's module path, so every run explores the same cases —
//!   failures are always reproducible without a persistence file;
//! * there is no shrinking: a failing case reports the exact inputs via
//!   the panic message instead of a minimised counterexample;
//! * `prop_assert!`/`prop_assert_eq!` panic immediately rather than
//!   returning `Err`, which is equivalent under the test runner.

#![deny(missing_docs)]

use std::ops::Range;

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; the stub never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Deterministic xorshift64* generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test identifier (stable across runs).
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the name, never zero.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant at test-harness fidelity.
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of random test inputs, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A, B)(A, B, C)(A, B, C, D));

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy: an arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection` in the real crate).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification accepted by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop` namespace re-exported by the prelude (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Everything a property test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Asserts a condition inside a property; panics with the formatted
/// message on failure (the stub does not shrink, so panicking is
/// equivalent to the real crate's `Err` return).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Defines property tests, mirroring `proptest::proptest!`.
///
/// Supports the subset of the real grammar this repository uses: an
/// optional `#![proptest_config(expr)]` header followed by `#[test]`
/// functions whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    // Render inputs up front: the body may move them.
                    let input_desc = format!(
                        concat!($( "\n  ", stringify!($arg), " = {:?}", )+),
                        $(&$arg),+
                    );
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $body
                    }));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {}/{} failed for {} with inputs:{}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            input_desc
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strat),+ ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        /// The macro itself wires configs, docs, and multiple args.
        #[test]
        fn macro_smoke(
            n in 1usize..10,
            xs in prop::collection::vec(0u64..5, 1..20),
            flag in any::<bool>(),
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert_eq!(flag as u8 <= 1, true);
        }
    }
}
