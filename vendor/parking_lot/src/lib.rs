//! Offline stub of `parking_lot`.
//!
//! The build environment has no access to a crate registry, so this
//! workspace vendors the slice of `parking_lot` the native benchmarks
//! use: a [`Mutex`] whose `lock()` returns a guard directly (no poison
//! `Result`). It is backed by `std::sync::Mutex`; benchmark numbers for
//! the "parking_lot" series therefore measure the std mutex and should
//! be read as a stand-in until the real dependency is available.

#![deny(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive with a non-poisoning `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex wrapping `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    ///
    /// Unlike `std::sync::Mutex`, panics in other critical sections do
    /// not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => MutexGuard { inner: g },
            Err(p) => MutexGuard {
                inner: p.into_inner(),
            },
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(0u64);
        *m.lock() += 41;
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert!(m.try_lock().is_some());
    }
}
