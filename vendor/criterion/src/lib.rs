//! Offline stub of `criterion`.
//!
//! The build environment has no access to a crate registry, so this
//! workspace vendors the slice of `criterion` the native benchmarks use:
//! [`Criterion`], [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function`, `finish`, [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Instead of
//! criterion's statistical machinery it times `sample_size` batches with
//! `std::time::Instant` and reports the minimum, mean, and maximum
//! nanoseconds per iteration — enough for `cargo bench` to run the
//! targets and print comparable numbers offline.

#![deny(missing_docs)]

use std::hint;
use std::time::Instant;

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Accepts and ignores command-line configuration (stub).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup {
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, f);
        self
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under the name `id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, f);
        self
    }

    /// Ends the group (prints nothing extra in the stub).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    // Warm-up sample, discarded.
    let mut b = Bencher { ns_per_iter: 0.0 };
    f(&mut b);
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        times.push(b.ns_per_iter);
    }
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!("{id:<24} min {min:>12.1} ns/iter   mean {mean:>12.1}   max {max:>12.1}");
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, choosing an iteration count so the measurement
    /// is long enough to be readable on a coarse clock.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: find an iteration count taking >= ~1ms, capped so
        // heavyweight routines (thread spawns) run once per sample.
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt.as_micros() >= 1_000 || iters >= 1 << 20 {
                self.ns_per_iter = dt.as_nanos() as f64 / iters as f64;
                return;
            }
            iters *= 8;
        }
    }
}

/// Declares a bench group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub_smoke");
        g.sample_size(2);
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
