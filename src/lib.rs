//! # reactive-sync
//!
//! A reproduction of *Reactive Synchronization Algorithms for
//! Multiprocessors* (Beng-Hong Lim, MIT, 1994; ASPLOS '94 with Anant
//! Agarwal) as a Rust workspace. This facade crate re-exports the member
//! crates under stable names:
//!
//! * [`sim`] — the Alewife/NWO-like deterministic multiprocessor
//!   simulator the experiments run on.
//! * [`api`] — the shared reactive protocol-selection API: the
//!   [`Policy`](api::Policy) and [`Protocol`](api::Protocol) traits,
//!   [`ProtocolId`](api::ProtocolId)s, and switch-event instrumentation,
//!   implemented by both the simulator-side and native reactive objects.
//! * [`protocols`] — the passive synchronization protocols the paper
//!   compares (test-and-set/TTS/MCS locks, lock-based and combining-tree
//!   fetch-and-op, message-passing protocols, barriers, J-structures).
//! * [`reactive`] — the paper's contribution: protocol-selection
//!   algorithms built on consensus objects, the reactive spin lock, the
//!   reactive fetch-and-op, switching policies, and two-phase waiting.
//! * [`waiting`] — Chapter 4's competitive analysis of waiting
//!   algorithms (expected costs, optimal `Lpoll`, task systems).
//! * [`native`] — the same reactive algorithms on real hardware
//!   (`std::sync::atomic` + thread parking), usable as a library.
//! * [`apps`] — miniature parallel applications with the paper's
//!   synchronization signatures, used by the benchmark harness.
//! * [`service`] — the multi-tenant adaptive lock service: millions of
//!   reactive objects in a sharded arena (one packed word per object at
//!   rest), with lock inflation, per-shard switch-rate limiting, an
//!   offline no-stampede oracle, and tail-latency reporting.
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md`
//! for the paper-vs-measured record of every table and figure.

pub use alewife_sim as sim;
pub use lock_service as service;
pub use reactive_api as api;
pub use reactive_core as reactive;
pub use reactive_native as native;
pub use sim_apps as apps;
pub use sync_protocols as protocols;
pub use waiting_theory as waiting;
