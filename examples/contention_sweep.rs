//! A miniature Figure 1.1: sweep contention from 1 to 32 processors and
//! print the per-acquisition overhead of each spin-lock protocol — the
//! tradeoff the reactive lock resolves.
//!
//! Run with: `cargo run --release --example contention_sweep`

use reactive_sync::sim::CostModel;
use repro_bench_shim::{lock_overhead, LockAlg};

/// Thin re-exports so the example only needs the facade crate plus the
/// public experiment API (the bench crate is not a dependency of the
/// facade; we inline the tiny runner here instead).
mod repro_bench_shim {
    pub use sim_apps_shim::LockAlg;

    mod sim_apps_shim {
        pub use reactive_sync::apps::alg::LockAlg;
    }

    use reactive_sync::apps::alg::AnyLock;
    use reactive_sync::sim::{Config, CostModel, Machine};

    /// Average overhead per critical section (same method as §3.5.1).
    pub fn lock_overhead(alg: LockAlg, procs: usize, cost: CostModel) -> f64 {
        let m = Machine::new(Config::default().nodes(procs.max(2)).cost(cost));
        let lock = AnyLock::make(&m, 0, alg, procs);
        let iters = (512 / procs as u64).max(8);
        for p in 0..procs {
            let cpu = m.cpu(p);
            let lock = lock.clone();
            m.spawn(p, async move {
                for _ in 0..iters {
                    let t = lock.acquire(&cpu).await;
                    cpu.work(100).await;
                    lock.release(&cpu, t).await;
                    cpu.work(cpu.rand_below(500)).await;
                }
            });
        }
        let elapsed = m.run();
        assert_eq!(m.live_tasks(), 0);
        let per_cs = elapsed as f64 / (iters * procs as u64) as f64;
        let ideal = ((100.0 + 250.0) / procs as f64).max(100.0);
        (per_cs - ideal).max(0.0)
    }
}

fn main() {
    println!("spin-lock overhead (cycles per critical section)");
    println!(
        "{:<8}{:>12}{:>12}{:>12}{:>12}",
        "procs", "test&set", "tts", "mcs", "reactive"
    );
    for procs in [1usize, 2, 4, 8, 16, 32] {
        let ts = lock_overhead(LockAlg::TestAndSet, procs, CostModel::nwo());
        let tts = lock_overhead(LockAlg::Tts, procs, CostModel::nwo());
        let mcs = lock_overhead(LockAlg::Mcs, procs, CostModel::nwo());
        let re = lock_overhead(LockAlg::Reactive, procs, CostModel::nwo());
        println!("{procs:<8}{ts:>12.1}{tts:>12.1}{mcs:>12.1}{re:>12.1}");
    }
    println!("\nexpected shape: tts wins at 1-2 procs, mcs wins at >=4,");
    println!("reactive tracks the winner at both ends (Figure 1.1).");
}
