//! Drive the Alewife-like simulator directly: build a 16-node machine,
//! run the reactive lock under shifting contention, and watch it change
//! protocols.
//!
//! Run with: `cargo run --example simulated_machine`

use reactive_sync::reactive::ReactiveLock;
use reactive_sync::sim::{Config, Machine};

fn main() {
    let m = Machine::new(Config::default().nodes(16));
    let lock = ReactiveLock::new(&m, 0, 16);
    let shared = m.alloc_on(1, 1);

    for p in 0..16 {
        let cpu = m.cpu(p);
        let lock = lock.clone();
        m.spawn(p, async move {
            // Phase 1: everyone hammers the lock (high contention).
            for _ in 0..25 {
                let t = lock.acquire(&cpu).await;
                let v = cpu.read(shared).await;
                cpu.work(100).await;
                cpu.write(shared, v + 1).await;
                lock.release(&cpu, t).await;
                cpu.work(cpu.rand_below(250)).await;
            }
            // Phase 2: only node 0 keeps going (no contention).
            if cpu.node() == 0 {
                for _ in 0..50 {
                    let t = lock.acquire(&cpu).await;
                    let v = cpu.read(shared).await;
                    cpu.work(10).await;
                    cpu.write(shared, v + 1).await;
                    lock.release(&cpu, t).await;
                    cpu.work(30).await;
                }
            }
        });
    }

    let elapsed = m.run();
    let stats = m.stats();
    println!("simulated {elapsed} cycles on 16 nodes");
    println!("lock acquisitions      : {}", m.read_word(shared));
    println!("protocol changes       : {}", lock.switches());
    println!(
        "  -> to queue protocol  : {}",
        stats.counter("reactive_lock.to_queue")
    );
    println!(
        "  -> back to TTS        : {}",
        stats.counter("reactive_lock.to_tts")
    );
    println!("coherence messages     : {}", stats.net_msgs);
    println!("remote misses          : {}", stats.remote_misses);
    println!("invalidations          : {}", stats.invalidations);
    println!("LimitLESS traps        : {}", stats.limitless_traps);
    assert_eq!(m.read_word(shared), 16 * 25 + 50);
}
