//! Event-loop throughput by layer: times each simulator subsystem in
//! isolation (pure executor, cached reads, deep await chains, watcher
//! ping-pong, contended fetch&add) so a profiler — or a quick eyeball —
//! can attribute per-event cost. Pass `--lock` to run the 64-node
//! contended reactive-lock storm instead (the `sim_throughput`
//! headline workload) under a profiler.
//!
//! ```sh
//! cargo run --release --example profile_hotpath
//! cargo run --release --example profile_hotpath -- --lock
//! ```
use std::time::Instant;

use reactive_sync::sim::{Config, Machine};

fn time(label: &str, mk: impl Fn() -> Machine) {
    let m = mk();
    let t0 = Instant::now();
    m.run();
    let dt = t0.elapsed().as_secs_f64();
    let ev = m.stats().sim_events;
    println!(
        "{label:<32} {ev:>10} events  {:>8.3} Mev/s",
        ev as f64 / dt / 1e6
    );
}

fn lock_workload() {
    use reactive_sync::apps::alg::{AnyLock, LockAlg};
    use reactive_sync::sim::CostModel;
    let m = Machine::new(
        Config::default()
            .nodes(64)
            .cost(CostModel::nwo())
            .seed(0xBEEF + 64),
    );
    let lock = AnyLock::make(&m, 0, LockAlg::Reactive, 64);
    for p in 0..64 {
        let cpu = m.cpu(p);
        let lock = lock.clone();
        m.spawn(p, async move {
            for _ in 0..8_000u64 {
                let t = lock.acquire(&cpu).await;
                cpu.work(5).await;
                lock.release(&cpu, t).await;
                cpu.work(cpu.rand_below(1)).await;
            }
        });
    }
    let t0 = Instant::now();
    m.run();
    let dt = t0.elapsed().as_secs_f64();
    let st = m.stats();
    let ev = st.sim_events;
    println!(
        "{:<32} {ev:>10} events  {:>8.3} Mev/s",
        "reactive lock 64",
        ev as f64 / dt / 1e6
    );
    println!(
        "  dir_requests={} remote_misses={} invals={} net_msgs={} active_msgs={}",
        st.dir_requests, st.remote_misses, st.invalidations, st.net_msgs, st.active_msgs
    );
}

async fn deep8(cpu: &reactive_sync::sim::Cpu, n: u64) {
    async fn d1(cpu: &reactive_sync::sim::Cpu) {
        cpu.work(3).await
    }
    async fn d2(cpu: &reactive_sync::sim::Cpu) {
        d1(cpu).await
    }
    async fn d3(cpu: &reactive_sync::sim::Cpu) {
        d2(cpu).await
    }
    async fn d4(cpu: &reactive_sync::sim::Cpu) {
        d3(cpu).await
    }
    async fn d5(cpu: &reactive_sync::sim::Cpu) {
        d4(cpu).await
    }
    async fn d6(cpu: &reactive_sync::sim::Cpu) {
        d5(cpu).await
    }
    async fn d7(cpu: &reactive_sync::sim::Cpu) {
        d6(cpu).await
    }
    for _ in 0..n {
        d7(cpu).await;
    }
}

fn main() {
    if std::env::args().any(|a| a == "--lock") {
        lock_workload();
        return;
    }
    // Layer 1: pure executor — one task, work() events only.
    time("work-only 1 task", || {
        let m = Machine::new(Config::default().nodes(1));
        let cpu = m.cpu(0);
        m.spawn(0, async move {
            for _ in 0..1_000_000u64 {
                cpu.work(3).await;
            }
        });
        m
    });
    // Layer 2: 64 tasks interleaved work().
    time("work-only 64 tasks", || {
        let m = Machine::new(Config::default().nodes(64));
        for p in 0..64 {
            let cpu = m.cpu(p);
            m.spawn(p, async move {
                for _ in 0..20_000u64 {
                    cpu.work(3).await;
                }
            });
        }
        m
    });
    // Layer 3: cache-hit reads.
    time("cached reads 64 tasks", || {
        let m = Machine::new(Config::default().nodes(64));
        let mut addrs = Vec::new();
        for p in 0..64 {
            addrs.push(m.alloc_on(p, 1));
        }
        for (p, &a) in addrs.iter().enumerate() {
            let cpu = m.cpu(p);
            m.spawn(p, async move {
                for _ in 0..20_000u64 {
                    cpu.read(a).await;
                }
            });
        }
        m
    });
    // Layer 3b: deep async chain (8 nested awaits per event).
    time("deep-chain work 64 tasks", || {
        let m = Machine::new(Config::default().nodes(64));
        for p in 0..64 {
            let cpu = m.cpu(p);
            m.spawn(p, async move {
                deep8(&cpu, 20_000).await;
            });
        }
        m
    });
    // Layer 3c: watcher ping-pong (poll_until + invalidation wakes).
    time("pingpong 32 pairs", || {
        let m = Machine::new(Config::default().nodes(64));
        for pair in 0..32usize {
            let a = m.alloc_on(2 * pair, 1);
            let b = m.alloc_on(2 * pair + 1, 1);
            let c0 = m.cpu(2 * pair);
            let c1 = m.cpu(2 * pair + 1);
            m.spawn(2 * pair, async move {
                for i in 1..=10_000u64 {
                    c0.write(a, i).await;
                    c0.poll_until(b, move |v| v >= i).await;
                }
            });
            m.spawn(2 * pair + 1, async move {
                for i in 1..=10_000u64 {
                    c1.poll_until(a, move |v| v >= i).await;
                    c1.write(b, i).await;
                }
            });
        }
        m
    });
    // Layer 4: contended fetch_and_add (directory path).
    time("contended faa 64 tasks", || {
        let m = Machine::new(Config::default().nodes(64));
        let a = m.alloc_on(0, 1);
        for p in 0..64 {
            let cpu = m.cpu(p);
            m.spawn(p, async move {
                for _ in 0..5_000u64 {
                    cpu.fetch_and_add(a, 1).await;
                }
            });
        }
        m
    });
}
