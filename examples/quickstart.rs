//! Quickstart: the native reactive mutex and two-phase waiting on real
//! threads — the library as a downstream user would adopt it.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;
use std::time::Duration;

use reactive_sync::native::{Event, ReactiveMutex, TwoPhaseWait};

fn main() {
    // A reactive mutex: test-and-test-and-set while quiet, MCS queue
    // under contention, switching automatically.
    let ledger = Arc::new(ReactiveMutex::new(Vec::<(u32, i64)>::new()));

    let handles: Vec<_> = (0..8)
        .map(|account| {
            let ledger = ledger.clone();
            std::thread::spawn(move || {
                for i in 0..10_000 {
                    let mut entries = ledger.lock();
                    entries.push((account, i));
                    if entries.len() > 64 {
                        entries.clear(); // settle the batch
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    println!(
        "reactive mutex: 80,000 postings settled; protocol switches = {}",
        ledger.switches()
    );

    // Two-phase waiting: poll briefly, then park — near-optimal without
    // knowing whether the wait will be short or long.
    let b = TwoPhaseWait::measure_block_cost(256);
    let policy = TwoPhaseWait::optimal_exponential(b);
    println!(
        "measured park cost B ~= {b:?}; two-phase Lpoll = 0.54*B ~= {:?}",
        policy.lpoll
    );

    let ready = Arc::new(Event::new());
    let r2 = ready.clone();
    let waiter = std::thread::spawn(move || {
        r2.wait(policy);
        "woke"
    });
    std::thread::sleep(Duration::from_millis(5));
    ready.set();
    println!("event wait: {}", waiter.join().unwrap());
}
