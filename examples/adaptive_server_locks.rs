//! A server's lock fleet in one screen: the multi-tenant lock service
//! hosts 100,000 adaptive objects in a packed arena and drives them
//! with two tenants — a latency-budgeted closed-loop tenant hammering
//! a Zipf-skewed hot set, and a bursty open-loop tenant whose spikes
//! try to stampede every hot object into a protocol switch at once.
//!
//! The demo runs the same workload three ways (adaptive, always-TTS,
//! always-queue) and prints what the CI bench gates on: tail latency,
//! abort rate, switch rate under the per-shard limiter, bytes/object
//! at rest, and the offline no-stampede oracle's verdict.
//!
//! Run with: `cargo run --release --example adaptive_server_locks`

use reactive_sync::service::{
    run_service, ArenaMode, ArrivalCurve, Load, ServiceConfig, ServiceReport, TenantConfig,
};

const OBJECTS: u64 = 100_000;

fn config(mode: ArenaMode) -> ServiceConfig {
    let mut cfg = ServiceConfig::new(OBJECTS, 16, 0xADA97);
    cfg.horizon_ns = 2_000_000; // 2 ms of virtual time
    cfg.mode = mode;
    // Tenant A: 32 request handlers in a closed loop over a Zipf-skewed
    // table (a few keys absorb most traffic), each request carrying a
    // 60 µs deadline — stuck waiters abort (think: answer 503).
    cfg.tenants.push(TenantConfig {
        first_object: 0,
        objects: OBJECTS,
        theta: 0.95,
        load: Load::Closed {
            clients: 32,
            think_ns: 300,
        },
        hold_ns: 250,
        deadline_ns: 60_000,
    });
    // Tenant B: open-loop background traffic that spikes 10x for 50 µs
    // out of every 200 µs across a small hot range.
    cfg.tenants.push(TenantConfig {
        first_object: 0,
        objects: 512,
        theta: 0.0,
        load: Load::Open {
            curve: ArrivalCurve::Burst {
                base_per_sec: 2_000_000.0,
                spike_per_sec: 20_000_000.0,
                duty_ns: 50_000,
                period_ns: 200_000,
            },
        },
        hold_ns: 100,
        deadline_ns: 0,
    });
    cfg
}

fn row(label: &str, r: &ServiceReport) {
    println!(
        "{label:>9} | p50 {:>5} ns | p99 {:>6} ns | p999 {:>6} ns | \
         aborts {:>5.2}% | switches {:>4} (+{} denied)",
        r.p50_ns(),
        r.p99_ns(),
        r.p999_ns(),
        100.0 * r.abort_rate(),
        r.switches,
        r.switch_denials,
    );
}

fn main() {
    let adaptive = run_service(config(ArenaMode::Adaptive));
    let tts = run_service(config(ArenaMode::StaticTts));
    let queue = run_service(config(ArenaMode::StaticQueue));

    println!("{OBJECTS} objects, 2 tenants, 2 ms virtual time\n");
    row("adaptive", &adaptive);
    row("all-TTS", &tts);
    row("all-queue", &queue);

    let fp = &adaptive.footprint;
    println!(
        "\narena at rest: {:.2} bytes/object ({} of {} objects ever went hot)",
        fp.at_rest_bytes_per_object(),
        fp.hot_objects,
        fp.objects,
    );
    let stampedes = adaptive.stampedes();
    println!(
        "no-stampede oracle over {} logged switches: {}",
        adaptive.switch_log.len(),
        if stampedes.is_empty() {
            "clean".to_string()
        } else {
            format!("{} window violations", stampedes.len())
        },
    );
    assert!(stampedes.is_empty(), "limiter let a stampede through");
}
