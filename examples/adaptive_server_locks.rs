//! A realistic native scenario: a server whose lock contention varies by
//! phase (quiet maintenance vs. bursty request storms). The reactive
//! mutex adapts; a fixed choice is wrong in one phase or the other.
//!
//! Run with: `cargo run --release --example adaptive_server_locks`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use reactive_sync::native::ReactiveMutex;

#[derive(Default)]
struct SessionTable {
    live: u64,
    peak: u64,
}

fn main() {
    let table = Arc::new(ReactiveMutex::new(SessionTable::default()));
    let stop = Arc::new(AtomicBool::new(false));

    // Quiet phase: one maintenance thread touching the table.
    let t0 = Instant::now();
    for _ in 0..200_000 {
        let mut t = table.lock();
        t.live = t.live.wrapping_add(1);
        t.peak = t.peak.max(t.live);
    }
    let quiet = t0.elapsed();

    // Storm phase: 8 request threads hammer the table.
    let t1 = Instant::now();
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let table = table.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut ops = 0u64;
                // order: Relaxed — a shutdown hint; one extra loop
                // iteration after the flag flips is harmless.
                while !stop.load(Ordering::Relaxed) {
                    let mut t = table.lock();
                    t.live = t.live.wrapping_add(1);
                    t.peak = t.peak.max(t.live);
                    ops += 1;
                }
                ops
            })
        })
        .collect();
    std::thread::sleep(std::time::Duration::from_millis(150));
    // order: Relaxed — see the worker-loop hint above.
    stop.store(true, Ordering::Relaxed);
    let storm_ops: u64 = workers.into_iter().map(|h| h.join().unwrap()).sum();
    let storm = t1.elapsed();

    println!("quiet phase : 200,000 ops in {quiet:?} (single thread)");
    println!("storm phase : {storm_ops} ops in {storm:?} (4 threads contending)");
    println!(
        "protocol switches performed by the lock: {}",
        table.switches()
    );
    // Take the guard once: two `table.lock()` calls in one statement
    // would deadlock (the first guard lives to the statement's end).
    let t = table.lock();
    println!("final table: live={} peak={}", t.live, t.peak);
}
