//! A realistic native scenario: a server whose lock contention varies by
//! phase (quiet maintenance vs. bursty request storms). The reactive
//! mutex adapts; a fixed choice is wrong in one phase or the other.
//!
//! A third, deadline phase models latency-budgeted requests on the
//! deterministic simulator: each request carries an absolute deadline
//! and **aborts** (think: answer 503) rather than queue forever behind
//! a slow writer — the abortable MCS lock's withdrawal path.
//!
//! Run with: `cargo run --release --example adaptive_server_locks`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use reactive_sync::native::ReactiveMutex;

#[derive(Default)]
struct SessionTable {
    live: u64,
    peak: u64,
}

/// Deadline phase: 4 simulated request handlers share one table lock;
/// every request gets a 300-cycle budget against a 60-cycle critical
/// section, so a request stuck third in line aborts at its deadline
/// (cleanly — the MCS queue slot is withdrawn, not leaked) and the
/// handler reports failure instead of blowing its latency budget.
fn deadline_phase() -> (u64, u64) {
    use reactive_sync::protocols::abortable::{AbortableMcsLock, Acquired};
    use reactive_sync::sim::{Config, Machine};

    const PROCS: usize = 4;
    const REQS: u64 = 25;
    let m = Machine::new(Config::default().nodes(PROCS));
    let lock = AbortableMcsLock::new(&m, 0, PROCS);
    let tally = m.alloc_on(0, 2); // [served, timed_out]
    for p in 0..PROCS {
        let (cpu, l) = (m.cpu(p), lock.clone());
        m.spawn(p, async move {
            for _ in 0..REQS {
                match l.acquire(&cpu, p, cpu.now() + 300).await {
                    Acquired::Granted(q) => {
                        cpu.work(60).await; // handle the request
                        cpu.fetch_and_add(tally, 1).await;
                        l.release(&cpu, q).await;
                    }
                    Acquired::Aborted => {
                        cpu.fetch_and_add(tally.plus(1), 1).await;
                        cpu.work(90).await; // send the 503, back off
                    }
                }
            }
        });
    }
    m.run();
    (m.read_word(tally), m.read_word(tally.plus(1)))
}

fn main() {
    let table = Arc::new(ReactiveMutex::new(SessionTable::default()));
    let stop = Arc::new(AtomicBool::new(false));

    // Quiet phase: one maintenance thread touching the table.
    let t0 = Instant::now();
    for _ in 0..200_000 {
        let mut t = table.lock();
        t.live = t.live.wrapping_add(1);
        t.peak = t.peak.max(t.live);
    }
    let quiet = t0.elapsed();

    // Storm phase: 8 request threads hammer the table.
    let t1 = Instant::now();
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let table = table.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut ops = 0u64;
                // order: Relaxed — a shutdown hint; one extra loop
                // iteration after the flag flips is harmless.
                while !stop.load(Ordering::Relaxed) {
                    let mut t = table.lock();
                    t.live = t.live.wrapping_add(1);
                    t.peak = t.peak.max(t.live);
                    ops += 1;
                }
                ops
            })
        })
        .collect();
    std::thread::sleep(std::time::Duration::from_millis(150));
    // order: Relaxed — see the worker-loop hint above.
    stop.store(true, Ordering::Relaxed);
    let storm_ops: u64 = workers.into_iter().map(|h| h.join().unwrap()).sum();
    let storm = t1.elapsed();

    println!("quiet phase : 200,000 ops in {quiet:?} (single thread)");
    println!("storm phase : {storm_ops} ops in {storm:?} (4 threads contending)");
    println!(
        "protocol switches performed by the lock: {}",
        table.switches()
    );
    // Take the guard once: two `table.lock()` calls in one statement
    // would deadlock (the first guard lives to the statement's end).
    let t = table.lock();
    println!("final table: live={} peak={}", t.live, t.peak);
    drop(t);

    let (served, timed_out) = deadline_phase();
    println!(
        "deadline phase: {served} requests served, {timed_out} aborted at their 300-cycle deadline \
         (every request resolved exactly once)"
    );
    assert_eq!(served + timed_out, 100);
    assert!(
        timed_out > 0,
        "the deadline never fired — no abort path exercised"
    );
}
