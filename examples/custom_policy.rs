//! A user-defined switching policy plugged into *both* worlds through
//! the shared `reactive_sync::api::Policy` trait: the same
//! `LoadAverage` type drives a reactive lock on the simulated
//! multiprocessor and a reactive mutex on the host's real threads —
//! the open API the paper's framework promises (§3.2, §3.4).
//!
//! Run with: `cargo run --example custom_policy`

use std::rc::Rc;
use std::sync::Arc;

use reactive_sync::api::{Decision, Observation, Policy, SwitchLog};
use reactive_sync::native;
use reactive_sync::reactive::ReactiveLock;
use reactive_sync::sim::{Config, Machine};

/// A load-average-driven policy, deliberately unlike any shipped one:
/// it keeps an exponentially weighted moving average of the monitor's
/// residual signal (positive when a more scalable protocol would serve
/// cheaper, negative when a cheaper one would) and switches only when
/// the *average* load crosses a threshold — single noisy observations
/// cannot flip it, but it also never forgets a trend the way a broken
/// hysteresis streak does.
struct LoadAverage {
    /// EWMA smoothing factor in (0, 1]; higher reacts faster.
    alpha: f64,
    /// Switch toward the scalable protocol above this average load.
    up: f64,
    /// Switch toward the cheap protocol below minus this average load.
    down: f64,
    avg: f64,
}

impl LoadAverage {
    fn new(alpha: f64, up: f64, down: f64) -> LoadAverage {
        LoadAverage {
            alpha,
            up,
            down,
            avg: 0.0,
        }
    }
}

impl Policy for LoadAverage {
    fn decide(&mut self, obs: &Observation) -> Decision {
        let signal = match obs.better {
            Some(b) if b > obs.current => obs.residual,
            Some(_) => -obs.residual,
            None => 0.0,
        };
        self.avg = (1.0 - self.alpha) * self.avg + self.alpha * signal;
        match obs.better {
            Some(b) if b > obs.current && self.avg > self.up => Decision::SwitchTo(b),
            Some(b) if b < obs.current && self.avg < -self.down => Decision::SwitchTo(b),
            _ => Decision::Stay,
        }
    }

    fn reset(&mut self) {
        self.avg = 0.0;
    }
}

/// Simulated world: ramp contention from one node to sixteen and back;
/// the load average should carry the lock TTS → queue → TTS.
fn simulated() -> (u64, usize) {
    let procs = 16;
    let m = Machine::new(Config::default().nodes(procs).seed(7));
    let log = Rc::new(SwitchLog::new());
    let lock = ReactiveLock::builder(&m, 0)
        .max_procs(procs)
        .policy(LoadAverage::new(0.5, 75.0, 7.0))
        .instrument(log.clone())
        .build();
    let shared = m.alloc_on(1, 1);
    for p in 0..procs {
        let cpu = m.cpu(p);
        let lock = lock.clone();
        m.spawn(p, async move {
            // Node 0 runs alone first (low contention), then everyone
            // piles on (high), then the tail drains (low again).
            if p > 0 {
                cpu.work(20_000).await;
            }
            let rounds = if p == 0 { 60 } else { 20 };
            for _ in 0..rounds {
                let t = lock.acquire(&cpu).await;
                let v = cpu.read(shared).await;
                cpu.write(shared, v + 1).await;
                lock.release(&cpu, t).await;
            }
        });
    }
    m.run();
    assert_eq!(m.read_word(shared), 60 + (procs as u64 - 1) * 20);
    (m.read_word(shared), log.count())
}

/// Native world: the *same policy type* behind a reactive mutex on real
/// threads, with the same instrumentation sink type. The lock *starts*
/// in the scalable queue protocol (the §3.5 recommendation when
/// contention is expected from the outset); after the contended burst a
/// quiet single-threaded tail produces an empty-queue streak, and the
/// load average pulls the lock down to the cheap TTS protocol — an
/// organic, monitor-driven switch that shows up in the shared sink.
fn on_host() -> (u64, usize) {
    let threads = 8u64;
    let contended = 200u64;
    let log = Arc::new(SwitchLog::new());
    let mutex = Arc::new(native::ReactiveMutex::with_lock(
        native::ReactiveLock::builder()
            .initial_protocol(native::reactive::PROTO_QUEUE)
            .policy(LoadAverage::new(0.5, 75.0, 7.0))
            .instrument(log.clone())
            .build(),
        0u64,
    ));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let mutex = mutex.clone();
            std::thread::spawn(move || {
                for _ in 0..contended {
                    let mut g = mutex.lock();
                    std::thread::sleep(std::time::Duration::from_micros(20));
                    *g += 1;
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let quiet = 200u64;
    for _ in 0..quiet {
        *mutex.lock() += 1;
    }
    let total = *mutex.lock();
    assert_eq!(total, threads * contended + quiet);
    assert!(
        log.count() > 0,
        "the quiet tail should have pulled the lock down to TTS"
    );
    (total, log.count())
}

fn main() {
    let (sim_ops, sim_switches) = simulated();
    println!("simulated machine: {sim_ops} critical sections, {sim_switches} protocol switches");

    let (host_ops, host_switches) = on_host();
    println!("host threads:      {host_ops} critical sections, {host_switches} protocol switches");

    println!("one Policy impl, two worlds — the API is open.");
}
