//! Chapter 4 in one example: the expected-cost theory of two-phase
//! waiting, the optimal static Lpoll, and a simulated producer-consumer
//! run that matches the theory's ordering.
//!
//! Run with: `cargo run --example two_phase_waiting`

use reactive_sync::apps::alg::WaitAlg;
use reactive_sync::apps::jacobi::{run_jstructures, JacobiConfig};
use reactive_sync::sim::CostModel;
use reactive_sync::waiting::dist::WaitDist;
use reactive_sync::waiting::expected::{competitive_factor, Family};
use reactive_sync::waiting::optimal::optimal_alpha;

fn main() {
    let b = CostModel::nwo().block_cost() as f64;

    // Theory: the optimal static polling limit under exponential waits.
    let (alpha, rho) = optimal_alpha(Family::Exponential, b);
    println!("optimal Lpoll = {alpha:.4} x B  (competitive factor {rho:.4})");
    println!("paper: alpha* = ln(e-1) = 0.5413, rho* = e/(e-1) = 1.5820");
    println!();

    // The factor across adversary choices for a few Lpoll settings.
    println!("expected competitive factor vs mean wait (exponential):");
    for mean_x in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let d = WaitDist::exponential_with_mean(mean_x * b);
        println!(
            "  mean {:>5.2}B:  a=0.54 -> {:.3}   a=1.0 -> {:.3}",
            mean_x,
            competitive_factor(&d, 0.5413, b, 1.0),
            competitive_factor(&d, 1.0, b, 1.0),
        );
    }
    println!();

    // Practice: Jacobi's J-structure waits under each waiting algorithm.
    let lpoll = (0.5413 * b) as u64;
    println!("Jacobi (J-structures, 8 procs) execution time by waiting algorithm:");
    for w in [
        WaitAlg::Spin,
        WaitAlg::Block,
        WaitAlg::TwoPhase(lpoll),
        WaitAlg::TwoPhase(b as u64),
    ] {
        let r = run_jstructures(&JacobiConfig::small(8, w));
        println!("  {:<18} {:>9} cycles", w.label(), r.elapsed);
    }
    println!("\n(two-phase should track the better of spin/block)");
}
