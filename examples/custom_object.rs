//! A user-defined reactive object on the switching kernel, in under
//! 100 lines: a counter that switches between one shared atomic word
//! (cheap uncontended) and per-thread stripes (scalable) at run time.
//!
//! Everything generic — protocol registration, the valid/invalid state
//! machine, policy handling, switch counting, `SwitchEvent` emission —
//! comes from `SwitchKernel`; this file supplies only the two
//! protocols and their `SwitchableObject` hooks. Like the reactive
//! barrier, it performs changes at application quiescent points, so
//! the hooks carry the counter value with the kernel's `Transfer`
//! discipline. A second demo shows the same kernel driving the
//! simulator's crash-robust lock, whose abortable protocol accepts a
//! per-acquire **deadline** and withdraws cleanly when it fires. Run
//! with `cargo run --example custom_object`.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use reactive_sync::native::api::{
    drive, Hysteresis, Observation, ProtocolId, SharedWorld, SwitchKernel, SwitchLog, SwitchStyle,
    SwitchableObject,
};

const ATOMIC: ProtocolId = ProtocolId(0);
const STRIPED: ProtocolId = ProtocolId(1);
const STRIPES: usize = 8;

struct ReactiveCounter {
    mode: AtomicU8,
    central: AtomicU64,
    stripes: [AtomicU64; STRIPES],
    kernel: SwitchKernel<SharedWorld>,
}

impl ReactiveCounter {
    fn new(log: Arc<SwitchLog>) -> ReactiveCounter {
        ReactiveCounter {
            mode: AtomicU8::new(ATOMIC.0),
            central: AtomicU64::new(0),
            stripes: std::array::from_fn(|_| AtomicU64::new(0)),
            kernel: SwitchKernel::<SharedWorld>::builder()
                .register(ATOMIC, "atomic-word", SwitchStyle::Transfer)
                .register(STRIPED, "striped", SwitchStyle::Transfer)
                .policy(Box::new(Hysteresis::new(2, 2)))
                .sink(log)
                .build(),
        }
    }

    fn add(&self, thread: usize, n: u64) {
        // order: Acquire pairs with publish_mode's Release, so a thread
        // routed to a protocol sees the state `validate` installed;
        // the adds themselves are Relaxed (commutative increments).
        match ProtocolId(self.mode.load(Ordering::Acquire)) {
            ATOMIC => self.central.fetch_add(n, Ordering::Relaxed), // order: see above
            _ => self.stripes[thread % STRIPES].fetch_add(n, Ordering::Relaxed), // order: see above
        };
    }

    fn value(&self) -> u64 {
        // order: Relaxed — read at quiescent points (no adds in flight).
        self.central.load(Ordering::Relaxed)
            + self
                .stripes
                .iter()
                .map(|s| s.load(Ordering::Relaxed))
                .sum::<u64>()
    }

    /// The monitor, called at application quiescent points (no adds in
    /// flight — the phase boundary is this object's consensus token).
    fn adapt(&self, threads: usize) {
        // order: Acquire — same pairing as `add`'s dispatch load.
        let cur = ProtocolId(self.mode.load(Ordering::Acquire));
        let obs = match (cur, threads) {
            (ATOMIC, t) if t > 4 => Observation::suboptimal(ATOMIC, STRIPED, 80.0 * t as f64),
            (STRIPED, t) if t <= 2 => Observation::suboptimal(STRIPED, ATOMIC, 40.0),
            _ => Observation::optimal(cur),
        };
        if let Some(to) = self.kernel.observe(&obs) {
            drive(self.kernel.switch(self, &(), cur, to));
        }
    }
}

impl SwitchableObject for ReactiveCounter {
    type Ctx = ();
    async fn validate(&self, _c: &(), to: ProtocolId, _f: ProtocolId, state: u64) {
        let slot = if to == ATOMIC {
            &self.central
        } else {
            &self.stripes[0]
        };
        // order: Relaxed — runs at a quiescent point; publication
        // happens through publish_mode's Release store.
        slot.store(state, Ordering::Relaxed);
    }
    async fn invalidate(&self, _c: &(), from: ProtocolId, _t: ProtocolId) -> Option<u64> {
        // order: Relaxed — quiescent point; see `validate`.
        Some(if from == ATOMIC {
            self.central.swap(0, Ordering::Relaxed) // order: see above
        } else {
            self.stripes
                .iter()
                .map(|s| s.swap(0, Ordering::Relaxed)) // order: see above
                .sum()
        })
    }
    async fn publish_mode(&self, _c: &(), to: ProtocolId) {
        // order: Release publishes the migrated counter state to the
        // Acquire dispatch loads in `add`/`adapt`.
        self.mode.store(to.0, Ordering::Release);
    }
    fn now(&self, _c: &()) -> u64 {
        self.kernel.switches() // any monotone stamp works for a demo
    }
}

/// Abort-with-deadline on a kernel-built object: the robust lock
/// (`reactive_core::robust`) registers an abortable MCS protocol and a
/// crash-recoverable one on the same `SwitchKernel`; in abortable mode
/// `acquire` takes an absolute-cycle deadline and returns `None` —
/// a clean withdrawal, no queue slot leaked — when it fires.
fn abort_with_deadline_demo() {
    use reactive_sync::reactive::RobustLock;
    use reactive_sync::sim::{Config, Machine};

    let m = Machine::new(Config::default().nodes(2));
    let lock = RobustLock::new(&m, 0, 2);
    let outcome = m.alloc_on(0, 2); // [aborts, passages]
    {
        let (cpu, l) = (m.cpu(0), lock.clone());
        m.spawn(0, async move {
            let t = l.acquire(&cpu, 0, u64::MAX).await.expect("no deadline");
            cpu.work(2_000).await; // a long critical section
            l.release(&cpu, 0, t).await;
        });
    }
    {
        let (cpu, l) = (m.cpu(1), lock.clone());
        m.spawn(1, async move {
            // Let proc 0 win the lock first.
            cpu.work(100).await;
            // Impatient attempt: the deadline fires while proc 0 still
            // holds the lock, so the acquire aborts instead of waiting.
            if l.acquire(&cpu, 1, cpu.now() + 200).await.is_none() {
                cpu.fetch_and_add(outcome, 1).await;
            }
            // Patient retry: no deadline, granted once proc 0 releases.
            let t = l.acquire(&cpu, 1, u64::MAX).await.expect("no deadline");
            cpu.fetch_and_add(outcome.plus(1), 1).await;
            l.release(&cpu, 1, t).await;
        });
    }
    m.run();
    let (aborts, passages) = (m.read_word(outcome), m.read_word(outcome.plus(1)));
    println!("robust lock: {aborts} abort under a 200-cycle deadline, then {passages} deadline-free passage");
    assert_eq!((aborts, passages), (1, 1));
}

fn main() {
    let log = Arc::new(SwitchLog::new());
    let c = Arc::new(ReactiveCounter::new(log.clone()));
    for phase_threads in [1usize, 8, 8, 1, 1, 1] {
        c.adapt(phase_threads);
        let hs: Vec<_> = (0..phase_threads)
            .map(|t| {
                let c = c.clone();
                std::thread::spawn(move || (0..10_000).for_each(|_| c.add(t, 1)))
            })
            .collect();
        hs.into_iter().for_each(|h| h.join().unwrap());
    }
    println!("total = {} (expect 200000)", c.value());
    for ev in log.events() {
        println!(
            "switched {} -> {} (residual {})",
            ev.from, ev.to, ev.residual
        );
    }
    assert_eq!(c.value(), 200_000);
    abort_with_deadline_demo();
}
